"""The multi-tenant query service: tenants, admission, timeouts, metrics.

This is the long-lived system the paper's cost model argues for: the
linear-time preprocessing half (chase + reduction) is paid once per
(ontology, database) and once per query plan, and the constant-delay
enumeration half is what every HTTP request actually buys.  The service
wires the :class:`repro.engine.QueryEngine` into that shape:

* **Tenants** are named databases.  Tenants whose workloads share an
  ontology share one engine — and *every* engine shares one global plan
  cache keyed by the SHA-256 ``(ontology, query)`` fingerprints, so a query
  compiled for one tenant is a plan-cache hit for all of them.
* **Admission control** bounds in-flight requests per tenant; overflow is
  rejected immediately with 429 + ``Retry-After`` instead of queueing
  without bound.
* **Timeouts** cancel cleanly: enumeration runs in a worker thread that
  checks a cancellation event between pages (constant delay means pages
  are cheap, so cancellation latency is one page), closes its cursor, and
  exits — no detached thread keeps burning CPU after the 504.
* **Cursors** are server-side sessions over :meth:`QueryEngine.open`.  The
  enumerator publishes copy-on-write snapshots, so a cursor opened before
  a mutation batch finishes over the pre-batch answers even while the
  maintenance pass installs the new state.
* **Mutations** coalesce through ``Database.batch()`` (one atomic version
  step) and then eagerly refresh the materialization while still holding
  the tenant's write gate, so maintenance never races a later batch.
* **Graceful shutdown** stops admitting, waits for in-flight work to
  drain, then closes every remaining cursor through its lifecycle hooks.

Handlers never block the event loop: parsing and routing are synchronous
and cheap, enumeration and maintenance run in threads.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass

from repro.config import ExecutionOptions, tracing_enabled
from repro.cq.query import QueryError
from repro.data.instance import Database
from repro.engine import LRUCache, QueryEngine
from repro.engine.engine import AnswerCursor, EngineStats
from repro.engine.stats import EngineCounters, LatencyHistogram
from repro.incremental.delta import Delta, apply_delta
from repro.obs.explain import explain_report
from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import TRACES, start_trace
from repro.server.http import BadRequest, Request, Response
from repro.workloads import get_workload

class QueryTimeout(Exception):
    """An enumeration exceeded the per-query timeout and was cancelled."""


class _Cancelled(Exception):
    """Internal: the worker thread observed the cancellation event."""


@dataclass
class ServiceConfig:
    """Operational knobs of the query service (see ``docs/server.md``)."""

    host: str = "127.0.0.1"
    port: int = 8080
    max_inflight: int = 8
    query_timeout: float = 10.0
    page_size: int = 100
    max_page_size: int = 10_000
    max_cursors: int = 64
    drain_timeout: float = 5.0
    plan_cache_size: int = 256
    strict: bool = True
    incremental: bool = True
    #: ``None`` defers to the process default (``REPRO_NO_CODEGEN``).
    codegen: bool | None = None
    #: Cost-based plan choice tri-state; ``None`` defers to the process
    #: default (``REPRO_NO_PLANNER``).
    planner: bool | None = None
    #: Request-tracing tri-state: ``True`` traces every request, ``False``
    #: hard-disables tracing (the ``X-Repro-Trace`` header is ignored),
    #: ``None`` traces requests that ask for it — an ``X-Repro-Trace``
    #: header, ``?explain=1``, or the ``REPRO_TRACE`` process default.
    tracing: bool | None = None
    #: Queries/pages slower than this (milliseconds) are written to the
    #: slow-query log as JSON lines on stderr; ``None`` disables the log.
    slow_query_ms: float | None = None
    #: Worker processes for the sharded parallel backend (chase, reduce,
    #: batch); ``None`` defers to ``REPRO_WORKERS``, ``1`` is sequential.
    workers: int | None = None

    def execution_options(self) -> ExecutionOptions:
        """The engine-facing view of this config (one options object)."""
        return ExecutionOptions(
            codegen=self.codegen,
            planner=self.planner,
            incremental=self.incremental,
            strict=self.strict,
            plan_cache_size=self.plan_cache_size,
            tracing=self.tracing,
            workers=self.workers,
        )


@dataclass
class CursorSession:
    """One server-side cursor: id, the engine cursor, and pagination state."""

    id: str
    query: str
    cursor: AnswerCursor
    busy: bool = False


class Tenant:
    """One named database plus its serving state."""

    def __init__(self, name: str, database: Database, engine: QueryEngine, spec: dict):
        self.name = name
        self.database = database
        self.engine = engine
        self.spec = spec
        self.inflight = 0
        self.cursors: dict[str, CursorSession] = {}
        self.cursor_seq = 0
        self.counters = EngineCounters()
        self.latency = LatencyHistogram()
        # Write gate: held (in a worker thread) across a mutation batch and
        # the eager refresh that follows, and around engine state
        # acquisition for reads — so maintenance never races a batch on the
        # database's internal structures.  Enumeration itself runs outside
        # the gate, over the enumerator's published snapshots.
        self.state_lock = threading.Lock()

    def info(self) -> dict:
        return {
            "name": self.name,
            "workload": self.spec,
            "db_facts": len(self.database),
            "db_version": self.database.version,
            "inflight": self.inflight,
            "open_cursors": len(self.cursors),
        }

    def metrics(self) -> dict:
        payload = self.info()
        payload["counters"] = self.counters.snapshot()
        payload["latency"] = self.latency.snapshot()
        return payload


class QueryService:
    """Routing and tenant management over the prepared-query engine."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.draining = False
        self._started = time.time()
        # One plan cache for the whole process: engines add their ontology
        # fingerprint to every key, so tenants over different ontologies
        # coexist and tenants over the same ontology share compiled plans.
        self._plan_cache: LRUCache = LRUCache(self.config.plan_cache_size)
        self._engines: dict[str, QueryEngine] = {}
        self._tenants: dict[str, Tenant] = {}
        self._counters = EngineCounters()
        self.slow_log = SlowQueryLog(self.config.slow_query_ms)

    # -- tenant management -------------------------------------------------

    def create_tenant(
        self, name: str, workload: str, size: int = 300, seed: int = 0
    ) -> Tenant:
        """Provision a named database from a workload (registry name or path)."""
        if not name or "/" in name:
            raise BadRequest(f"invalid tenant name {name!r}")
        if name in self._tenants:
            raise BadRequest(f"tenant {name!r} already exists", status=409)
        try:
            scenario = get_workload(workload).scenario(size=size, seed=seed)
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        engine = self._engine_for(scenario.ontology)
        tenant = Tenant(
            name,
            scenario.database,
            engine,
            {"workload": workload, "size": size, "seed": seed},
        )
        self._tenants[name] = tenant
        return tenant

    def _engine_for(self, ontology) -> QueryEngine:
        """The shared engine for an ontology (one per distinct fingerprint)."""
        probe = QueryEngine(
            ontology,
            options=self.config.execution_options(),
            plan_cache=self._plan_cache,
        )
        return self._engines.setdefault(probe.ontology_fingerprint, probe)

    def drop_tenant(self, name: str) -> None:
        tenant = self._tenant(name)
        for session in list(tenant.cursors.values()):
            session.cursor.close()
        tenant.cursors.clear()
        del self._tenants[name]

    def _tenant(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise BadRequest(f"unknown tenant {name!r}", status=404)
        return tenant

    @property
    def tenants(self) -> dict[str, Tenant]:
        return dict(self._tenants)

    # -- request routing ---------------------------------------------------

    async def handle(self, request: Request) -> Response:
        self._counters.bump("requests")
        parts = [part for part in request.path.split("/") if part]
        try:
            return await self._route(request, parts)
        except QueryTimeout as exc:
            return Response.error(504, str(exc))
        except BadRequest as exc:
            # Also mapped by the transport; handled here too so the handler
            # layer is self-contained for tests and embedders.
            return Response.error(exc.status, str(exc))
        except QueryError as exc:
            return Response.error(400, str(exc))

    async def _route(self, request: Request, parts: list[str]) -> Response:
        method = request.method
        if parts == ["healthz"]:
            return Response.json(
                {"status": "draining" if self.draining else "ok", "tenants": len(self._tenants)}
            )
        if parts == ["metrics"] and method == "GET":
            if request.params.get("format") == "prometheus":
                return Response(
                    body=render_prometheus(self.metrics()).encode("utf-8"),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            return Response.json(self.metrics())
        if parts == ["traces"] and method == "GET":
            count = request.param_int("count", 20)
            return Response.json(
                {
                    "traces": [
                        {
                            "trace_id": trace.trace_id,
                            "name": trace.name,
                            "started_at": trace.started_at,
                            "duration_ms": round(trace.duration_ms, 3),
                            "spans": len(trace.spans),
                        }
                        for trace in TRACES.recent(count)
                    ]
                }
            )
        if len(parts) == 2 and parts[0] == "traces" and method == "GET":
            trace = TRACES.get(parts[1])
            if trace is None:
                raise BadRequest(f"unknown trace {parts[1]!r}", status=404)
            return Response.json(explain_report(trace))
        if parts == ["tenants"] and method == "GET":
            return Response.json(
                {"tenants": [t.info() for _, t in sorted(self._tenants.items())]}
            )
        if len(parts) == 2 and parts[0] == "tenants":
            return await self._route_tenant(request, parts[1])
        if len(parts) >= 3 and parts[0] == "tenants":
            return await self._route_tenant_sub(request, parts[1], parts[2:])
        raise BadRequest(f"no route for {request.path!r}", status=404)

    async def _route_tenant(self, request: Request, name: str) -> Response:
        if request.method == "GET":
            return Response.json(self._tenant(name).info())
        if request.method == "PUT":
            if self.draining:
                return self._unavailable()
            payload = request.json()
            tenant = self.create_tenant(
                name,
                str(payload.get("workload", "university")),
                size=int(payload.get("size", 300)),
                seed=int(payload.get("seed", 0)),
            )
            return Response.json(tenant.info(), status=201)
        if request.method == "DELETE":
            self.drop_tenant(name)
            return Response.json({"dropped": name})
        raise BadRequest("use GET, PUT or DELETE", status=405)

    async def _route_tenant_sub(
        self, request: Request, name: str, rest: list[str]
    ) -> Response:
        tenant = self._tenant(name)
        if rest == ["query"] and request.method == "POST":
            return await self._query(tenant, request)
        if rest == ["facts"] and request.method == "POST":
            return await self._mutate(tenant, request)
        if rest == ["cursors"] and request.method == "POST":
            return await self._open_cursor(tenant, request)
        if len(rest) == 2 and rest[0] == "cursors":
            session = tenant.cursors.get(rest[1])
            if session is None:
                raise BadRequest(f"unknown cursor {rest[1]!r}", status=404)
            if request.method == "GET":
                return await self._fetch_page(tenant, session, request)
            if request.method == "DELETE":
                session.cursor.close()
                return Response.json({"closed": session.id})
            raise BadRequest("use GET or DELETE", status=405)
        raise BadRequest(f"no route for {request.path!r}", status=404)

    # -- admission control -------------------------------------------------

    def _unavailable(self) -> Response:
        return Response.error(503, "service is draining", **{"Retry-After": "1"})

    def _admit(self, tenant: Tenant) -> Response | None:
        """Take an in-flight slot, or produce the rejection response.

        Runs on the event loop with no await between check and increment,
        so the per-tenant bound is exact.
        """
        if self.draining:
            return self._unavailable()
        if tenant.inflight >= self.config.max_inflight:
            tenant.counters.bump("rejected")
            self._counters.bump("rejected")
            return Response.error(
                429,
                f"tenant {tenant.name!r} has {tenant.inflight} requests in flight "
                f"(limit {self.config.max_inflight})",
                **{"Retry-After": "1"},
            )
        tenant.inflight += 1
        return None

    # -- request tracing ---------------------------------------------------

    def _trace_scope(self, request: Request, name: str, force: bool = False):
        """The trace context for one request, or ``None`` when untraced.

        ``tracing=False`` in the config hard-disables request tracing (the
        ``X-Repro-Trace`` header is ignored); otherwise a request is traced
        when the client sent a trace id, asked for ``?explain=1``
        (``force``), or the config / ``REPRO_TRACE`` process default says
        to trace everything.  The client-supplied id is adopted so the
        trace can be correlated across systems; the id is echoed back in
        the ``X-Repro-Trace`` response header either way.
        """
        if self.config.tracing is False:
            return None
        trace_id = request.headers.get("x-repro-trace") or None
        if (
            force
            or trace_id is not None
            or self.config.tracing
            or tracing_enabled()
        ):
            return start_trace(name, trace_id=trace_id)
        return None

    @staticmethod
    def _with_trace(response: Response, trace) -> Response:
        if trace is not None:
            response.headers["X-Repro-Trace"] = trace.trace_id
        return response

    # -- threaded execution with cancellation ------------------------------

    async def _in_thread(self, tenant: Tenant, fn, *args):
        """Run ``fn(cancel_event, *args)`` in a thread under the timeout.

        On timeout the cancellation event is set and the worker is awaited:
        it notices the flag at the next page boundary, closes its cursor and
        raises — so the thread is provably finished (not detached) by the
        time the 504 goes out.
        """
        cancel = threading.Event()
        task = asyncio.ensure_future(asyncio.to_thread(fn, cancel, *args))
        try:
            return await asyncio.wait_for(
                asyncio.shield(task), self.config.query_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            cancel.set()
            with contextlib.suppress(Exception):
                await task
            tenant.counters.bump("timeouts")
            self._counters.bump("timeouts")
            raise QueryTimeout(
                f"query exceeded the {self.config.query_timeout}s timeout"
            ) from None

    @staticmethod
    def _drain_rows(
        cursor: AnswerCursor, cancel: threading.Event, limit: int | None = None
    ) -> tuple[list[tuple], bool]:
        """Fetch up to ``limit`` rows (all with ``None``), cancellable.

        Returns ``(rows, exhausted)``.  The cancellation event is checked
        once per cursor page — the ``page_size`` hint the service gave
        :meth:`QueryEngine.open`, so pagination granularity is configured in
        one place; constant delay per answer bounds the time between checks.
        """
        rows: list[tuple] = []
        chunk = cursor.page_size
        while True:
            if cancel.is_set():
                raise _Cancelled()
            want = chunk if limit is None else min(chunk, limit - len(rows))
            if want <= 0:
                return rows, False
            page = cursor.fetchmany(want)
            rows.extend(page)
            if len(page) < want:
                return rows, True

    @staticmethod
    def _encode_rows(rows: list[tuple]) -> list[list[str]]:
        return [[str(term) for term in row] for row in rows]

    # -- endpoints ---------------------------------------------------------

    @staticmethod
    def _query_text(request: Request) -> str:
        payload = request.json()
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise BadRequest('body must carry a non-empty "query" string')
        return query

    async def _query(self, tenant: Tenant, request: Request) -> Response:
        """Execute one query to completion: sorted complete answers.

        ``?explain=1`` forces a trace and embeds the phase-level EXPLAIN
        report (span tree, per-phase rollup, delay stats) in the response;
        an ``X-Repro-Trace`` request header adopts the caller's trace id.
        Traced responses — including 504s — echo the id back in the
        ``X-Repro-Trace`` header.
        """
        query = self._query_text(request)
        explain = request.params.get("explain", "") in ("1", "true", "yes", "on")
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        scope = self._trace_scope(request, f"query:{tenant.name}", force=explain)
        trace = None
        started = time.perf_counter()
        try:
            try:
                if scope is None:
                    rows = await self._in_thread(
                        tenant, self._execute_blocking, tenant, query
                    )
                else:
                    with scope as trace:
                        rows = await self._in_thread(
                            tenant, self._execute_blocking, tenant, query
                        )
            except QueryTimeout as exc:
                self.slow_log.record(
                    query=query,
                    elapsed_ms=1000 * (time.perf_counter() - started),
                    tenant=tenant.name,
                    trace_id=trace.trace_id if trace else None,
                    outcome="timeout",
                )
                return self._with_trace(Response.error(504, str(exc)), trace)
        finally:
            tenant.inflight -= 1
        elapsed = time.perf_counter() - started
        tenant.latency.observe(elapsed)
        tenant.counters.bump("queries")
        self._counters.bump("queries")
        self.slow_log.record(
            query=query,
            elapsed_ms=1000 * elapsed,
            tenant=tenant.name,
            trace_id=trace.trace_id if trace else None,
            answers=len(rows),
        )
        payload = {
            "tenant": tenant.name,
            "answers": self._encode_rows(sorted(rows)),
            "count": len(rows),
            "elapsed_ms": round(1000 * elapsed, 3),
            "db_version": tenant.database.version,
        }
        if trace is not None:
            payload["trace_id"] = trace.trace_id
            if explain:
                payload["explain"] = explain_report(trace, answers=len(rows))
        return self._with_trace(Response.json(payload), trace)

    def _execute_blocking(
        self, cancel: threading.Event, tenant: Tenant, query: str
    ) -> list[tuple]:
        with tenant.state_lock:
            cursor = tenant.engine.open(
                query, tenant.database, page_size=self.config.page_size
            )
        try:
            rows, _ = QueryService._drain_rows(cursor, cancel)
            return rows
        finally:
            cursor.close()

    async def _open_cursor(self, tenant: Tenant, request: Request) -> Response:
        """Open a server-side cursor; answers stream via GET pages."""
        query = self._query_text(request)
        if len(tenant.cursors) >= self.config.max_cursors:
            return Response.error(
                429,
                f"tenant {tenant.name!r} has {len(tenant.cursors)} open cursors "
                f"(limit {self.config.max_cursors})",
                **{"Retry-After": "1"},
            )
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        scope = self._trace_scope(request, f"cursor:{tenant.name}")
        trace = None
        try:
            if scope is None:
                cursor = await self._in_thread(
                    tenant, self._open_blocking, tenant, query
                )
            else:
                with scope as trace:
                    cursor = await self._in_thread(
                        tenant, self._open_blocking, tenant, query
                    )
        finally:
            tenant.inflight -= 1
        tenant.cursor_seq += 1
        session = CursorSession(id=f"c{tenant.cursor_seq}", query=query, cursor=cursor)
        tenant.cursors[session.id] = session
        # Lifecycle hook: however the cursor closes (explicit DELETE, page
        # exhaustion, timeout, shutdown drain), the session deregisters.
        cursor.add_close_hook(lambda _c: tenant.cursors.pop(session.id, None))
        tenant.counters.bump("cursors_opened")
        payload = {
            "tenant": tenant.name,
            "cursor": session.id,
            "db_version": tenant.database.version,
        }
        if trace is not None:
            payload["trace_id"] = trace.trace_id
        return self._with_trace(Response.json(payload, status=201), trace)

    def _open_blocking(
        self, cancel: threading.Event, tenant: Tenant, query: str
    ) -> AnswerCursor:
        del cancel  # preprocessing is not paginated; the timeout still applies
        with tenant.state_lock:
            return tenant.engine.open(
                query, tenant.database, page_size=self.config.page_size
            )

    async def _fetch_page(
        self, tenant: Tenant, session: CursorSession, request: Request
    ) -> Response:
        count = request.param_int("count", self.config.page_size)
        if count > self.config.max_page_size:
            raise BadRequest(f"count exceeds max_page_size={self.config.max_page_size}")
        if session.busy:
            return Response.error(409, f"cursor {session.id!r} has a fetch in flight")
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        session.busy = True
        scope = self._trace_scope(request, f"page:{tenant.name}")
        trace = None
        started = time.perf_counter()
        try:
            if scope is None:
                rows, exhausted = await self._in_thread(
                    tenant, self._page_blocking, session, count
                )
            else:
                with scope as trace:
                    rows, exhausted = await self._in_thread(
                        tenant, self._page_blocking, session, count
                    )
        except QueryTimeout:
            # Clean cancellation: the worker already stopped at a page
            # boundary; close the cursor so the session does not leak.
            session.cursor.close()
            raise
        finally:
            session.busy = False
            tenant.inflight -= 1
        elapsed = time.perf_counter() - started
        tenant.latency.observe(elapsed)
        tenant.counters.bump("pages")
        self._counters.bump("pages")
        self.slow_log.record(
            query=session.query,
            elapsed_ms=1000 * elapsed,
            tenant=tenant.name,
            trace_id=trace.trace_id if trace else None,
            answers=len(rows),
            cursor=session.id,
        )
        if exhausted:
            session.cursor.close()
        payload = {
            "tenant": tenant.name,
            "cursor": session.id,
            "answers": self._encode_rows(rows),
            "count": len(rows),
            "done": exhausted,
        }
        if trace is not None:
            payload["trace_id"] = trace.trace_id
        return self._with_trace(Response.json(payload), trace)

    @staticmethod
    def _page_blocking(
        cancel: threading.Event, session: CursorSession, count: int
    ) -> tuple[list[tuple], bool]:
        return QueryService._drain_rows(session.cursor, cancel, limit=count)

    async def _mutate(self, tenant: Tenant, request: Request) -> Response:
        """Apply one coalesced mutation batch, then refresh eagerly."""
        try:
            delta = Delta.from_wire(request.json())
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        rejection = self._admit(tenant)
        if rejection is not None:
            return rejection
        started = time.perf_counter()
        try:
            added, removed = await self._in_thread(
                tenant, self._mutate_blocking, tenant, delta
            )
        finally:
            tenant.inflight -= 1
        tenant.counters.bump("mutations")
        self._counters.bump("mutations")
        return Response.json(
            {
                "tenant": tenant.name,
                "added": added,
                "removed": removed,
                "db_version": tenant.database.version,
                "db_facts": len(tenant.database),
                "elapsed_ms": round(1000 * (time.perf_counter() - started), 3),
            }
        )

    @staticmethod
    def _mutate_blocking(
        cancel: threading.Event, tenant: Tenant, delta: Delta
    ) -> tuple[int, int]:
        del cancel  # mutations are never torn by a timeout: apply + refresh
        with tenant.state_lock:
            added, removed = apply_delta(tenant.database, delta)
            # Maintain the materialization *now*, inside the write gate, so
            # readers find it current and maintenance never races a batch.
            tenant.engine.refresh(tenant.database)
            return added, removed

    # -- metrics -----------------------------------------------------------

    def metrics(self) -> dict:
        """The ``/metrics`` document: engines, tenants, service counters."""
        engines = {
            fingerprint[:12]: engine.snapshot().as_dict()
            for fingerprint, engine in sorted(self._engines.items())
        }
        # Seed the aggregate with the full schema so scrapers see every key
        # (as 0) even before the first engine exists or when codegen is off.
        aggregate: dict[str, int] = EngineStats.zero().as_dict()
        for snapshot in engines.values():
            for key, value in snapshot.items():
                # interned_terms is process-global; summing would double count.
                if key == "interned_terms":
                    aggregate[key] = value
                else:
                    aggregate[key] = aggregate.get(key, 0) + value
        return {
            "service": {
                "draining": self.draining,
                "uptime_seconds": round(time.time() - self._started, 3),
                "tenants": len(self._tenants),
                "counters": self._counters.snapshot(),
            },
            "engine": aggregate,
            "engines": engines,
            "tenants": {
                name: tenant.metrics() for name, tenant in sorted(self._tenants.items())
            },
        }

    # -- lifecycle ---------------------------------------------------------

    def open_cursor_count(self) -> int:
        return sum(len(tenant.cursors) for tenant in self._tenants.values())

    def inflight_count(self) -> int:
        return sum(tenant.inflight for tenant in self._tenants.values())

    async def shutdown(self) -> dict:
        """Drain: refuse new work, wait for in-flight, close open cursors."""
        self.draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while self.inflight_count() and loop.time() < deadline:
            await asyncio.sleep(0.02)
        drained = self.inflight_count() == 0
        closed = 0
        for tenant in self._tenants.values():
            for session in list(tenant.cursors.values()):
                session.cursor.close()
                closed += 1
            tenant.cursors.clear()
        return {"drained": drained, "cursors_closed": closed}
