"""The multi-tenant asyncio query service over the prepared-query engine.

Layers (bottom up):

* :mod:`repro.server.http` — a bounded stdlib HTTP/1.1 transport over
  ``asyncio.start_server`` (no framework);
* :mod:`repro.server.service` — tenants, the shared cross-tenant plan
  cache, admission control, per-query timeouts with clean cursor
  cancellation, paginated cursors, batched mutations, ``/metrics``;
* :mod:`repro.server.runner` — process lifecycle (``repro serve``): bind,
  announce, drain on SIGTERM/SIGINT.

See ``docs/server.md`` for the endpoint reference and the tenancy model.
"""

from repro.server.http import BadRequest, HttpServer, Request, Response
from repro.server.runner import READY_PREFIX, run, serve
from repro.server.service import (
    CursorSession,
    QueryService,
    QueryTimeout,
    ServiceConfig,
    Tenant,
)

__all__ = [
    "BadRequest",
    "CursorSession",
    "HttpServer",
    "QueryService",
    "QueryTimeout",
    "READY_PREFIX",
    "Request",
    "Response",
    "ServiceConfig",
    "Tenant",
    "run",
    "serve",
]
