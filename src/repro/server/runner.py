"""Process lifecycle for the query service: bind, announce, drain, exit.

:func:`serve` is what ``repro serve`` runs.  It binds the HTTP server,
prints one machine-readable ready line (``repro-server listening on
http://host:port``) so drivers can discover an ephemeral port, then waits
for SIGTERM/SIGINT.  Shutdown is graceful in two stages: the service drains
(refusing new work with 503, waiting for in-flight requests, closing every
remaining cursor through its lifecycle hooks), then the transport closes.
A second signal skips the drain wait.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys

from repro.server.http import HttpServer
from repro.server.service import QueryService, ServiceConfig

READY_PREFIX = "repro-server listening on "


async def serve(
    service: QueryService,
    *,
    announce=None,
    ready: "asyncio.Event | None" = None,
    stop: "asyncio.Event | None" = None,
    install_signal_handlers: bool = True,
) -> dict:
    """Run ``service`` until stopped; returns the drain report.

    ``announce`` receives the base URL once the socket is bound (defaults
    to printing the ready line); ``ready``/``stop`` are optional events for
    embedding the server in another asyncio program (the tests and the
    in-process benchmark drive it this way).
    """
    server = HttpServer(
        service.handle, host=service.config.host, port=service.config.port
    )
    await server.start()
    stop = stop or asyncio.Event()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
    if announce is None:
        print(f"{READY_PREFIX}{server.address}", flush=True)
    else:
        announce(server.address)
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        report = await service.shutdown()
        await server.stop()
    return report


def run(config: ServiceConfig, tenants: list[tuple[str, str, int, int]]) -> int:
    """Blocking entry point: build the service, provision tenants, serve."""
    service = QueryService(config)
    for name, workload, size, seed in tenants:
        tenant = service.create_tenant(name, workload, size=size, seed=seed)
        print(
            f"tenant {tenant.name!r}: workload={workload} "
            f"({len(tenant.database)} facts)",
            file=sys.stderr,
            flush=True,
        )
    report = asyncio.run(serve(service))
    print(
        f"shutdown: drained={report['drained']} "
        f"cursors_closed={report['cursors_closed']}",
        file=sys.stderr,
        flush=True,
    )
    return 0
