"""A minimal asyncio HTTP/1.1 layer for the query service.

Deliberately tiny instead of a framework: the service needs exactly one
thing from HTTP — request in, JSON response out, over keep-alive
connections — and the stdlib ``asyncio.start_server`` stream API covers
that in a page of code.  What this layer does handle carefully:

* bounded parsing (header block and body size caps → 431/413, malformed
  requests → 400) so a misbehaving client cannot balloon memory;
* keep-alive with correct ``Connection`` semantics (HTTP/1.0 closes unless
  asked, HTTP/1.1 persists unless told otherwise);
* connection tracking, so :meth:`HttpServer.stop` can first stop accepting,
  then let in-flight exchanges finish, then close what remains — the
  transport half of the service's graceful shutdown.

Handlers are ``async (Request) -> Response`` callables and never see
sockets; everything above this module is plain request/response logic,
which is what the interleaving tests drive directly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Parsing caps: a request line + headers block, and a body, respectively.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(ValueError):
    """A request the parser or a handler refuses; carries the status code."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    http_version: str = "1.1"

    def json(self) -> dict:
        """The body as a JSON object (empty body → empty object)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        return payload

    def param_int(self, name: str, default: int, minimum: int = 1) -> int:
        """An integer query parameter with a floor, 400 on garbage."""
        raw = self.params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as exc:
            raise BadRequest(f"query parameter {name!r} must be an integer") from exc
        if value < minimum:
            raise BadRequest(f"query parameter {name!r} must be >= {minimum}")
        return value


@dataclass
class Response:
    """One HTTP response; ``json`` is the only constructor handlers use."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200, **headers: str) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=headers)

    @classmethod
    def error(cls, status: int, message: str, **headers: str) -> "Response":
        return cls.json({"error": message, "status": status}, status=status, **headers)

    def encode(self, *, close: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self.headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + self.body


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise BadRequest("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise BadRequest("request head too large", status=431) from exc
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head too large", status=431)

    try:
        text = head.decode("ascii")
    except UnicodeDecodeError as exc:
        raise BadRequest("request head is not ASCII") from exc
    request_line, *header_lines = text.split("\r\n")[:-2]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise BadRequest(f"malformed request line: {request_line!r}")
    method, target, version = parts

    headers: dict[str, str] = {}
    for line in header_lines:
        name, separator, value = line.partition(":")
        if not separator or not name.strip():
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    params = {name: value for name, value in parse_qsl(split.query)}

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise BadRequest("invalid Content-Length") from exc
        if length < 0:
            raise BadRequest("invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise BadRequest("truncated request body") from exc

    return Request(
        method=method.upper(),
        path=unquote(split.path),
        params=params,
        headers=headers,
        body=body,
        http_version=version.removeprefix("HTTP/"),
    )


class HttpServer:
    """An asyncio stream server dispatching requests to one async handler."""

    def __init__(self, handler, host: str = "127.0.0.1", port: int = 0):
        self._handler = handler
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        assert self._server is not None, "server is not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> "HttpServer":
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self._host,
            port=self._port,
            limit=MAX_HEADER_BYTES,
        )
        return self

    async def stop(self, *, grace_seconds: float = 0.5) -> None:
        """Stop accepting, give in-flight exchanges a grace period, close."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        deadline = asyncio.get_running_loop().time() + grace_seconds
        while self._connections and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            writer.close()
        self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except BadRequest as exc:
                    writer.write(Response.error(exc.status, str(exc)).encode(close=True))
                    await writer.drain()
                    return
                if request is None:
                    return
                try:
                    response = await self._handler(request)
                except BadRequest as exc:
                    response = Response.error(exc.status, str(exc))
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    response = Response.error(500, f"{type(exc).__name__}: {exc}")
                close = self._should_close(request)
                writer.write(response.encode(close=close))
                await writer.drain()
                if close:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; nothing to clean up
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _should_close(request: Request) -> bool:
        connection = request.headers.get("connection", "").lower()
        if request.http_version == "1.0":
            return connection != "keep-alive"
        return connection == "close"
