"""Boolean matrix multiplication reductions (Theorem 4.4).

The acyclic but not free-connex acyclic query ``q(x, y) ← R(x, z), S(z, y)``
computes, over the database encoding of two Boolean matrices, exactly the
one-entries of their product.  Theorem 4.4 turns this into a conditional
lower bound: enumerating such OMQs with linear preprocessing and constant
delay would give sparse Boolean matrix multiplication in time linear in
input plus output.  The benchmarks use the construction to contrast the
projected (hard) query with its full free-connex variant
``q(x, z, y) ← R(x, z), S(z, y)`` which *is* enumerable in CD∘Lin.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.facts import Fact
from repro.data.instance import Database
from repro.cq.parser import parse_query
from repro.core.omq import OMQ
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology

Entry = tuple[int, int]


def matrices_to_database(
    m1: Iterable[Entry], m2: Iterable[Entry]
) -> Database:
    """Encode two sparse Boolean matrices (lists of one-entries) as facts."""
    facts = [Fact("R", (row, column)) for row, column in m1]
    facts += [Fact("S", (row, column)) for row, column in m2]
    return Database(facts)


def bmm_omq(with_ontology: bool = True) -> OMQ:
    """The acyclic, non-free-connex OMQ whose answers are the matrix product.

    With ``with_ontology`` a small ELI ontology is attached (it marks rows
    and columns), matching the paper's setting where the ontology may use
    symbols outside the data schema; it does not change the answer set.
    """
    if with_ontology:
        ontology = parse_ontology(
            "R(x, y) -> Row(x)\nS(x, y) -> Col(y)", name="bmm"
        )
    else:
        ontology = Ontology((), name="empty")
    query = parse_query("q(x, y) :- R(x, z), S(z, y)")
    return OMQ.from_parts(ontology, query, name="Q_bmm")


def bmm_free_connex_omq(with_ontology: bool = True) -> OMQ:
    """The full variant ``q(x, z, y)``: acyclic *and* free-connex acyclic."""
    if with_ontology:
        ontology = parse_ontology(
            "R(x, y) -> Row(x)\nS(x, y) -> Col(y)", name="bmm"
        )
    else:
        ontology = Ontology((), name="empty")
    query = parse_query("q(x, z, y) :- R(x, z), S(z, y)")
    return OMQ.from_parts(ontology, query, name="Q_bmm_full")


def boolean_matrix_multiply_naive(
    m1: Sequence[Entry], m2: Sequence[Entry], dimension: int
) -> set[Entry]:
    """Dense triple-loop Boolean matrix multiplication (the O(n^3) baseline)."""
    a = [[False] * dimension for _ in range(dimension)]
    b = [[False] * dimension for _ in range(dimension)]
    for row, column in m1:
        a[row][column] = True
    for row, column in m2:
        b[row][column] = True
    product: set[Entry] = set()
    for i in range(dimension):
        row_a = a[i]
        for j in range(dimension):
            for k in range(dimension):
                if row_a[k] and b[k][j]:
                    product.add((i, j))
                    break
    return product


def boolean_matrix_multiply_sparse(
    m1: Sequence[Entry], m2: Sequence[Entry]
) -> set[Entry]:
    """Sparse (adjacency-list) Boolean matrix multiplication baseline."""
    by_row: dict[int, set[int]] = {}
    for row, column in m1:
        by_row.setdefault(row, set()).add(column)
    by_middle: dict[int, set[int]] = {}
    for row, column in m2:
        by_middle.setdefault(row, set()).add(column)
    product: set[Entry] = set()
    for row, middles in by_row.items():
        for middle in middles:
            for column in by_middle.get(middle, ()):
                product.add((row, column))
    return product


def boolean_matrix_multiply_via_omq(
    m1: Sequence[Entry], m2: Sequence[Entry]
) -> set[Entry]:
    """The matrix product read off the OMQ ``Q_bmm`` (certain answers)."""
    database = matrices_to_database(m1, m2)
    omq = bmm_omq()
    return set(omq.certain_answers(database))
