"""Lower-bound reductions of the paper (triangles and Boolean matrices)."""

from repro.reductions.triangle import (
    graph_to_database,
    has_triangle_naive,
    has_triangle_via_omq,
    triangle_omq,
    triangle_partial_answer_omq,
)
from repro.reductions.bmm import (
    bmm_free_connex_omq,
    bmm_omq,
    boolean_matrix_multiply_naive,
    boolean_matrix_multiply_sparse,
    boolean_matrix_multiply_via_omq,
    matrices_to_database,
)

__all__ = [
    "bmm_free_connex_omq",
    "bmm_omq",
    "boolean_matrix_multiply_naive",
    "boolean_matrix_multiply_sparse",
    "boolean_matrix_multiply_via_omq",
    "graph_to_database",
    "has_triangle_naive",
    "has_triangle_via_omq",
    "matrices_to_database",
    "triangle_omq",
    "triangle_partial_answer_omq",
]
