"""Triangle-detection reductions (Theorems 3.4, 3.6 and 5.1).

The conditional lower bounds of the paper reduce triangle detection in an
undirected graph to OMQ answering: for the OMQs constructed here, deciding
whether the all-wildcard tuple is a *minimal* partial answer on the database
encoding of a graph is equivalent to deciding whether the graph contains a
triangle.  The benchmarks use these constructions to exhibit the "hardness
shape": single-testing for non-weakly-acyclic OMQs inherits the superlinear
behaviour of triangle detection, while acyclic OMQs stay linear.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.data.facts import Fact
from repro.data.instance import Database
from repro.cq.parser import parse_query
from repro.core.omq import OMQ
from repro.core.testing import OMQSingleTester
from repro.core.wildcards import WILDCARD
from repro.tgds.parser import parse_ontology

Edge = tuple[object, object]


def graph_to_database(edges: Iterable[Edge], relation: str = "R") -> Database:
    """Encode an undirected graph as the database ``D_G`` of Theorem 3.6.

    Every undirected edge ``{u, v}`` contributes the two facts ``R(u, v)``
    and ``R(v, u)``.
    """
    facts = []
    for u, v in edges:
        facts.append(Fact(relation, (u, v)))
        facts.append(Fact(relation, (v, u)))
    return Database(facts)


def triangle_omq() -> OMQ:
    """The weakly acyclic OMQ of Theorem 3.6(1), (G,CQ) version.

    The ontology makes a triangle of nulls exist as soon as the graph has an
    edge, hence ``(*,*,*)`` is always a partial answer; it is a *minimal*
    partial answer iff the graph has no triangle.
    """
    ontology = parse_ontology(
        "R(x1, x2) -> R(y1, y2), R(y2, y1), R(y2, y3), R(y3, y2), R(y3, y1), R(y1, y3)",
        name="triangle",
    )
    query = parse_query(
        "q(x, y, z) :- R(x, y), R(y, x), R(y, z), R(z, y), R(z, x), R(x, z)"
    )
    return OMQ.from_parts(ontology, query, name="Q_triangle")


def triangle_partial_answer_omq() -> OMQ:
    """The acyclic, free-connex acyclic OMQ of Theorem 5.1, (G,CQ) version.

    For every vertex ``v``, the tuple ``(v, *, *, v)`` is a partial answer;
    it is minimal iff ``v`` does not lie on a triangle.  All-testing minimal
    partial answers for this OMQ therefore solves triangle detection.
    """
    ontology = parse_ontology(
        "R(x1, x2) -> R(x1, y1), R(y1, x1), R(y1, y2), R(y2, y1), R(y2, x1), R(x1, y2)",
        name="triangle_path",
    )
    query = parse_query(
        "q(x, y, z, u) :- R(x, y), R(y, x), R(y, z), R(z, y), R(z, u), R(u, z)"
    )
    return OMQ.from_parts(ontology, query, name="Q_triangle_path")


def has_triangle_naive(edges: Sequence[Edge]) -> bool:
    """Direct triangle detection via neighbour-set intersection."""
    adjacency: dict[object, set] = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    for u, v in edges:
        if adjacency[u] & adjacency[v]:
            return True
    return False


def has_triangle_via_omq(edges: Sequence[Edge]) -> bool:
    """Triangle detection through the OMQ reduction of Theorem 3.6(1).

    Builds ``D_G``, runs the single-tester for minimal partial answers on
    the all-wildcard tuple and inverts the result: the tuple fails to be
    minimal exactly when the graph contains a triangle.
    """
    database = graph_to_database(edges)
    if not len(database):
        return False
    omq = triangle_omq()
    tester = OMQSingleTester(omq, database)
    all_wildcards = (WILDCARD, WILDCARD, WILDCARD)
    return not tester.test_minimal_partial(all_wildcards)


def vertices_on_triangles_via_omq(edges: Sequence[Edge]) -> set:
    """The vertices that lie on a triangle, via the Theorem 5.1 OMQ."""
    database = graph_to_database(edges)
    if not len(database):
        return set()
    omq = triangle_partial_answer_omq()
    tester = OMQSingleTester(omq, database)
    vertices = {u for edge in edges for u in edge}
    return {
        v
        for v in vertices
        if not tester.test_minimal_partial((v, WILDCARD, WILDCARD, v))
    }
