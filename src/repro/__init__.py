"""repro: constant-delay enumeration of answers to ontology-mediated queries.

A from-scratch Python reproduction of Lutz & Przybylko, "Efficiently
Enumerating Answers to Ontology-Mediated Queries" (PODS 2022).  The public
API re-exports the most commonly used classes; see ``README.md`` for a tour
and the ``docs/`` tree (``docs/architecture.md`` in particular) for the
layer-by-layer walkthrough.
"""

from repro.config import (
    ExecutionOptions,
    set_codegen,
    set_interning,
    set_planner,
    set_tracing,
    use_codegen,
    use_interning,
    use_planner,
    use_tracing,
)
from repro.data import Database, Fact, Instance, Schema
from repro.cq import Atom, ConjunctiveQuery, Variable, parse_query
from repro.tgds import TGD, Ontology, parse_ontology, parse_tgd
from repro.chase import chase, query_directed_chase
from repro.engine import PreparedQuery, QueryEngine, prepare_query
from repro.incremental import ChaseMaintainer, Delta
from repro.io import (
    Scenario,
    dump_scenario,
    load_database,
    load_ontology,
    load_queries,
    load_scenario,
)
from repro.workloads import get_workload, list_workloads

__all__ = [
    "Atom",
    "ChaseMaintainer",
    "ConjunctiveQuery",
    "Database",
    "Delta",
    "ExecutionOptions",
    "Fact",
    "Instance",
    "Ontology",
    "PreparedQuery",
    "QueryEngine",
    "Scenario",
    "Schema",
    "TGD",
    "Variable",
    "chase",
    "dump_scenario",
    "get_workload",
    "list_workloads",
    "load_database",
    "load_ontology",
    "load_queries",
    "load_scenario",
    "parse_ontology",
    "parse_query",
    "parse_tgd",
    "prepare_query",
    "query_directed_chase",
    "set_codegen",
    "set_interning",
    "set_planner",
    "set_tracing",
    "use_codegen",
    "use_interning",
    "use_planner",
    "use_tracing",
]

__version__ = "0.1.0"
