"""Phase-level EXPLAIN: a finished trace rendered as an operator report.

:func:`explain_report` digests one :class:`~repro.obs.trace.Trace` into the
JSON shape the CLI (``repro explain``) and the HTTP service (``?explain=1``)
both serve: the nested span tree, a per-phase duration rollup (parse /
plan / chase / reduce / enumerate), the per-answer delay distribution from
the enumeration span, and — when the caller passes the prepared plan — a
plan summary (verdicts, fingerprints, null depth).  The plan summary is
duck-typed off :class:`repro.engine.plan.PreparedQuery`'s attributes, not
imported, so this module stays importable from every layer.

:func:`format_span_tree` turns the report into the indented text tree the
CLI prints.
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import Trace

__all__ = ["explain_report", "format_span_tree"]

#: The canonical pipeline phases, in execution order; the rollup reports
#: them in this order, other span names follow alphabetically.
PHASES = ("parse", "plan", "chase", "revalidate", "plan_choice", "reduce", "enumerate")


def _walk(nodes: list[dict[str, Any]]):
    for node in nodes:
        yield node
        yield from _walk(node.get("children", []))


def plan_summary(prepared: Any) -> dict[str, Any]:
    """The EXPLAIN view of a prepared plan (duck-typed, attribute by attribute)."""
    summary: dict[str, Any] = {}
    omq = getattr(prepared, "omq", None)
    if omq is not None:
        summary["query"] = getattr(omq, "name", None)
        summary["arity"] = getattr(omq, "arity", None)
    for attribute in (
        "is_acyclic",
        "is_weakly_acyclic",
        "is_free_connex_acyclic",
        "supports_enumeration",
        "null_depth",
        "strict",
        "ontology_fingerprint",
        "query_fingerprint",
    ):
        value = getattr(prepared, attribute, None)
        if value is not None:
            summary[attribute] = value
    decomposition = getattr(prepared, "decomposition", None)
    if decomposition is not None:
        bags = getattr(decomposition, "bags", None)
        if bags is not None:
            summary["decomposition_bags"] = len(bags)
    choice = getattr(prepared, "last_plan_choice", None)
    if choice is not None:
        as_dict = getattr(choice, "as_dict", None)
        if callable(as_dict):
            # The cost-based pick of the last state build: chosen candidate,
            # the losing candidates with their costs, and estimated vs
            # actual reduced rows.
            summary["plan_choice"] = as_dict()
    return summary


def explain_report(
    trace: Trace,
    prepared: Any | None = None,
    answers: int | None = None,
) -> dict[str, Any]:
    """Digest ``trace`` (and optionally its plan) into the EXPLAIN shape.

    ``phases`` aggregates span durations by name — a phase that ran more
    than once (several queries in one trace, chase + revalidate rounds)
    reports its call count alongside the total.  ``delay`` is the
    per-answer distribution recorded by
    :func:`repro.obs.trace.traced_answers` on the (first) enumeration span.
    """
    tree = trace.span_tree()
    rollup: dict[str, dict[str, Any]] = {}
    delay: dict[str, Any] | None = None
    total_answers = 0
    for node in _walk(tree):
        name = node["name"]
        phase = rollup.setdefault(name, {"calls": 0, "total_ms": 0.0, "errors": 0})
        phase["calls"] += 1
        phase["total_ms"] = round(phase["total_ms"] + node["duration_ms"], 6)
        if node["status"] == "error":
            phase["errors"] += 1
        attributes = node.get("attributes", {})
        if name == "enumerate":
            total_answers += attributes.get("answers", 0)
            if delay is None and "delay" in attributes:
                delay = attributes["delay"]
    ordered = {name: rollup[name] for name in PHASES if name in rollup}
    ordered.update(
        {name: phase for name, phase in sorted(rollup.items()) if name not in ordered}
    )
    report: dict[str, Any] = {
        "trace_id": trace.trace_id,
        "name": trace.name,
        "duration_ms": round(trace.duration_ms, 6),
        "phases": ordered,
        "spans": tree,
        "events": trace.to_dict()["events"],
    }
    if trace.spans_dropped:
        report["spans_dropped"] = trace.spans_dropped
    if answers is None and total_answers:
        answers = total_answers
    if answers is not None:
        report["answers"] = answers
    if delay is not None:
        report["delay"] = delay
    if prepared is not None:
        report["plan"] = plan_summary(prepared)
    return report


def _format_node(node: dict[str, Any], depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    marker = {"ok": "", "cancelled": " [cancelled]", "error": " [ERROR]"}.get(
        node["status"], f" [{node['status']}]"
    )
    detail = ""
    attributes = node.get("attributes", {})
    notable = {
        key: value
        for key, value in attributes.items()
        if key != "delay" and not isinstance(value, (dict, list))
    }
    if notable:
        detail = "  " + " ".join(
            f"{key}={value}" for key, value in sorted(notable.items())
        )
    lines.append(
        f"{indent}{node['name']:<12} {node['duration_ms']:>10.3f} ms{marker}{detail}"
    )
    if "delay" in attributes:
        delay = attributes["delay"]
        if delay.get("count"):
            lines.append(
                f"{indent}  per-answer delay: "
                f"min={delay['min_ms']:.4f} p50={delay['p50_ms']:.4f} "
                f"p99={delay['p99_ms']:.4f} max={delay['max_ms']:.4f} ms "
                f"({delay['count']} answers)"
            )
    for child in node.get("children", []):
        _format_node(child, depth + 1, lines)


def format_span_tree(report: dict[str, Any]) -> str:
    """The EXPLAIN report as an indented text tree (the CLI output)."""
    lines = [f"trace {report['trace_id']}  {report['duration_ms']:.3f} ms"]
    plan = report.get("plan")
    if plan:
        verdicts = ", ".join(
            f"{key.removeprefix('is_')}={plan[key]}"
            for key in ("is_acyclic", "is_free_connex_acyclic")
            if key in plan
        )
        name = plan.get("query", "?")
        lines.append(f"plan  {name}  {verdicts}  null_depth={plan.get('null_depth')}")
        choice = plan.get("plan_choice")
        if choice:
            lines.append(
                f"plan choice  candidate {choice.get('chosen')} of "
                f"{len(choice.get('candidates', []))}  cost={choice.get('cost')}  "
                f"estimated_rows={choice.get('estimated_rows')}  "
                f"actual_rows={choice.get('actual_rows')}"
            )
            for candidate in choice.get("candidates", []):
                chosen = "*" if candidate.get("index") == choice.get("chosen") else " "
                shape = " + ".join(
                    f"{component.get('root')}({','.join(component.get('atoms', []))})"
                    for component in candidate.get("components", [])
                )
                lines.append(
                    f"  {chosen} [{candidate.get('index')}] cost={candidate.get('cost')} "
                    f"rows={candidate.get('estimated_rows')}  {shape}"
                )
    for node in report.get("spans", []):
        _format_node(node, 0, lines)
    for event in report.get("events", []):
        detail = " ".join(
            f"{key}={value}"
            for key, value in sorted(event.items())
            if key not in ("name", "at_ms")
        )
        lines.append(f"event {event['name']} @{event['at_ms']:.3f} ms  {detail}".rstrip())
    return "\n".join(lines)
