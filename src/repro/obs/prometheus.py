"""Prometheus text exposition (format 0.0.4) over the ``/metrics`` document.

:func:`render_prometheus` takes the same nested dict the JSON ``/metrics``
endpoint serves (see :meth:`repro.server.service.QueryService.metrics`) and
flattens it into the plain-text format scrapers consume: ``# HELP`` /
``# TYPE`` headers, ``_total``-suffixed counters, gauges for point-in-time
values, and full cumulative-bucket histograms built from the raw buckets
:meth:`repro.engine.stats.LatencyHistogram.snapshot` now exposes.

The renderer is deliberately duck-typed over the dict — it imports nothing
from the engine or server — so it keeps working for any embedder that
assembles a metrics document of the same shape, and stays importable from
every layer without cycles.
"""

from __future__ import annotations

import math
import re
from typing import Any

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The content type Prometheus scrapers expect for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")

#: Engine snapshot fields that are point-in-time values, not monotone
#: counters (everything else in ``EngineStats`` only ever grows).
_ENGINE_GAUGES = frozenset({"plans_cached", "cursors_open", "interned_terms"})


def _metric_name(*parts: str) -> str:
    return _NAME_SANITIZER.sub("_", "_".join(parts))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _number(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


class _Exposition:
    """Accumulates samples grouped per metric family, renders once."""

    def __init__(self) -> None:
        self._families: dict[str, tuple[str, str, list[str]]] = {}

    def sample(
        self,
        name: str,
        kind: str,
        help_text: str,
        value: Any,
        labels: dict[str, str] | None = None,
        suffix: str = "",
    ) -> None:
        _, _, samples = self._families.setdefault(name, (kind, help_text, []))
        samples.append(f"{name}{suffix}{_labels(labels or {})} {_number(value)}")

    def histogram(
        self,
        name: str,
        help_text: str,
        snapshot: dict[str, Any],
        labels: dict[str, str] | None = None,
    ) -> None:
        """One histogram family from a ``LatencyHistogram.snapshot()``."""
        buckets = snapshot.get("buckets")
        if not buckets:
            return
        labels = labels or {}
        for bucket in buckets:
            bound = bucket["le"]
            le = "+Inf" if bound == "+Inf" else _number(float(bound))
            self.sample(
                name,
                "histogram",
                help_text,
                bucket["count"],
                {**labels, "le": le},
                suffix="_bucket",
            )
        self.sample(
            name, "histogram", help_text, snapshot.get("sum_seconds", 0.0), labels, "_sum"
        )
        self.sample(
            name, "histogram", help_text, snapshot.get("count", 0), labels, "_count"
        )

    def render(self) -> str:
        lines: list[str] = []
        for name, (kind, help_text, samples) in self._families.items():
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"


def render_prometheus(metrics: dict[str, Any]) -> str:
    """The ``/metrics`` document as Prometheus text exposition 0.0.4."""
    out = _Exposition()

    service = metrics.get("service", {})
    out.sample(
        "repro_service_draining",
        "gauge",
        "Whether the service is refusing new work (1 while draining).",
        bool(service.get("draining", False)),
    )
    out.sample(
        "repro_service_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
        service.get("uptime_seconds", 0.0),
    )
    out.sample(
        "repro_service_tenants",
        "gauge",
        "Number of provisioned tenants.",
        service.get("tenants", 0),
    )
    for counter, value in sorted(service.get("counters", {}).items()):
        out.sample(
            _metric_name("repro_service", counter) + "_total",
            "counter",
            f"Service-wide count of {counter}.",
            value,
        )

    # Engine snapshots: the cross-engine aggregate unlabeled, plus one
    # labeled series per engine (ontology fingerprint prefix) when several
    # ontologies are being served.
    engines = dict(metrics.get("engines", {}))
    aggregate = metrics.get("engine", {})
    if aggregate:
        engines[""] = aggregate
    for engine_id, snapshot in sorted(engines.items()):
        labels = {"engine": engine_id} if engine_id else {}
        for field, value in sorted(snapshot.items()):
            if field in _ENGINE_GAUGES:
                out.sample(
                    _metric_name("repro_engine", field),
                    "gauge",
                    f"Engine gauge {field}.",
                    value,
                    labels,
                )
            else:
                out.sample(
                    _metric_name("repro_engine", field) + "_total",
                    "counter",
                    f"Engine count of {field}.",
                    value,
                    labels,
                )

    for tenant_name, tenant in sorted(metrics.get("tenants", {}).items()):
        labels = {"tenant": tenant_name}
        for gauge in ("db_facts", "db_version", "inflight", "open_cursors"):
            if gauge in tenant:
                out.sample(
                    _metric_name("repro_tenant", gauge),
                    "gauge",
                    f"Per-tenant gauge {gauge}.",
                    tenant[gauge],
                    labels,
                )
        for counter, value in sorted(tenant.get("counters", {}).items()):
            out.sample(
                _metric_name("repro_tenant", counter) + "_total",
                "counter",
                f"Per-tenant count of {counter}.",
                value,
                labels,
            )
        out.histogram(
            "repro_tenant_latency_seconds",
            "Per-tenant request latency (queries and cursor pages).",
            tenant.get("latency", {}),
            labels,
        )

    return out.render()
