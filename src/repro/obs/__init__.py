"""Observability: query tracing, EXPLAIN reports, metrics exposition.

Four small modules, layered so the rest of the engine can depend on them
cycle-free:

* :mod:`repro.obs.trace` — spans, traces, the ambient contextvar plumbing
  and the process ring buffer (imports only the stdlib and
  :mod:`repro.config`);
* :mod:`repro.obs.explain` — turns a finished trace (plus an optional
  prepared plan) into the phase-level EXPLAIN report;
* :mod:`repro.obs.prometheus` — renders the ``/metrics`` document in
  Prometheus text exposition format 0.0.4;
* :mod:`repro.obs.slowlog` — the structured slow-query log (one JSON line
  per offending query, with its trace id).
"""

from repro.obs.explain import explain_report, format_span_tree
from repro.obs.prometheus import render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    NULL_SPAN,
    TRACES,
    DelayStats,
    Span,
    Trace,
    TraceStore,
    add_event,
    current_span,
    current_trace,
    span,
    start_trace,
    traced_answers,
)

__all__ = [
    "NULL_SPAN",
    "TRACES",
    "DelayStats",
    "SlowQueryLog",
    "Span",
    "Trace",
    "TraceStore",
    "add_event",
    "current_span",
    "current_trace",
    "explain_report",
    "format_span_tree",
    "render_prometheus",
    "span",
    "start_trace",
    "traced_answers",
]
