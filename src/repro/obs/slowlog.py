"""The slow-query log: one structured JSON line per offending query.

Operators tune a single threshold (``--slow-query-ms`` on the CLI,
``slow_query_ms`` in :class:`repro.server.service.ServiceConfig`); any
query whose end-to-end latency crosses it is written as one self-contained
JSON object per line — machine-parsable, grep-able, and carrying the trace
id so the offending execution can be pulled from the trace ring buffer
(``/traces/{id}``, :data:`repro.obs.trace.TRACES`) while it is still there.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, TextIO

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Emit a JSON line for every query slower than the threshold.

    A ``None`` threshold disables the log (``record`` becomes a cheap
    early return), so call sites can install one unconditionally.  Writes
    go to ``stream`` (default ``sys.stderr``, resolved per write so test
    harnesses that rebind it are respected) under a lock — one line per
    record, never interleaved.
    """

    def __init__(self, threshold_ms: float | None, stream: TextIO | None = None):
        if threshold_ms is not None and threshold_ms < 0:
            raise ValueError("slow-query threshold must be non-negative")
        self.threshold_ms = threshold_ms
        self._stream = stream
        self._lock = threading.Lock()
        self.emitted = 0

    def record(
        self,
        *,
        query: str,
        elapsed_ms: float,
        tenant: str | None = None,
        trace_id: str | None = None,
        answers: int | None = None,
        **extra: Any,
    ) -> bool:
        """Log the query if it crossed the threshold; True when it did."""
        if self.threshold_ms is None or elapsed_ms < self.threshold_ms:
            return False
        entry: dict[str, Any] = {
            "event": "slow_query",
            "ts": round(time.time(), 3),
            "elapsed_ms": round(elapsed_ms, 3),
            "threshold_ms": self.threshold_ms,
            "query": query,
        }
        if tenant is not None:
            entry["tenant"] = tenant
        if trace_id is not None:
            entry["trace_id"] = trace_id
        if answers is not None:
            entry["answers"] = answers
        entry.update(extra)
        line = json.dumps(entry, sort_keys=True, default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            print(line, file=stream, flush=True)
            self.emitted += 1
        return True
