"""Span-based query tracing: contextvar trace context, monotonic spans.

The paper's central claim — constant delay after bounded preprocessing — is
a statement about *where time goes*, yet until this module the engine could
only report totals.  A :class:`Trace` is one end-to-end execution (a CLI
``repro explain`` run, one HTTP request); a :class:`Span` is one phase of
it — ``parse``, ``plan``, ``chase``, ``reduce``, ``enumerate`` — with a
monotonic start/end, a parent link and free-form attributes.  The
``enumerate`` span additionally carries a per-answer *delay distribution*
(:class:`DelayStats`) sampled by :func:`traced_answers`, which is what
turns the constant-delay guarantee into a measurable min/p50/p99/max.

Design constraints, in priority order:

1. **Near-zero overhead when off.**  The ambient trace lives in one
   :class:`contextvars.ContextVar`; :func:`span` performs exactly one
   ``ContextVar.get`` and returns the shared :data:`NULL_SPAN` when no
   trace is active, and components constructed with ``tracing=False`` skip
   even that check.  Per-answer sampling only happens inside an active
   trace.  ``benchmarks/ab_tracing.py`` gates the disabled-mode overhead.
2. **Thread-friendly.**  Traces are shared objects guarded by one lock;
   spans opened from worker threads (``asyncio.to_thread`` propagates the
   context automatically, ``QueryEngine.execute_batch`` copies it per task)
   attach to the same trace with correct parent links.
3. **Bounded memory.**  Finished traces land in a ring buffer
   (:class:`TraceStore`, default 256 traces); each trace caps its span
   count, so a runaway enumeration cannot balloon the process.

This module deliberately imports only :mod:`repro.config`, like
:mod:`repro.engine.codegen`, so every layer (data, chase, enumeration,
engine, server) can call into it cycle-free.
"""

from __future__ import annotations

import threading
import time
import uuid
from bisect import bisect_left
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = [
    "NULL_SPAN",
    "TRACES",
    "DelayStats",
    "Span",
    "Trace",
    "TraceStore",
    "add_event",
    "current_span",
    "current_trace",
    "span",
    "start_trace",
    "traced_answers",
]

#: Spans a single trace will record before dropping further ones (the
#: ``spans_dropped`` counter on the trace says when the cap was hit).
MAX_SPANS_PER_TRACE = 512

#: Events (instantaneous markers, e.g. codegen compiles) per trace.
MAX_EVENTS_PER_TRACE = 256

_ACTIVE_TRACE: "ContextVar[Trace | None]" = ContextVar("repro_trace", default=None)
_ACTIVE_SPAN: "ContextVar[Span | None]" = ContextVar("repro_span", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (wire-safe, collision-negligible)."""
    return uuid.uuid4().hex[:16]


#: Delay-sample buckets: 0.25 µs .. ~4 s in ×2 steps.  Much finer than the
#: request-latency histogram of :mod:`repro.engine.stats` because a single
#: enumeration step is micro- not milliseconds.
_DELAY_BOUNDS = tuple(0.25e-6 * (2.0**i) for i in range(24))


class DelayStats:
    """A bounded histogram of per-answer delays (seconds).

    O(1) memory however many answers stream through; exact ``min``/``max``/
    ``sum`` are kept alongside so the tails are not quantized away.
    Percentiles answer from bucket upper bounds (conservative, error
    bounded by the ×2 bucket ratio).  Not thread-safe: one enumeration
    owns one recorder.
    """

    __slots__ = ("_counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._counts = [0] * (len(_DELAY_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[bisect_left(_DELAY_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, fraction: float) -> float:
        """The upper bound of the bucket holding the ``fraction`` rank."""
        if self.count == 0:
            return 0.0
        rank = max(1, round(fraction * self.count))
        seen = 0
        for bucket, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                if bucket < len(_DELAY_BOUNDS):
                    return min(_DELAY_BOUNDS[bucket], self.max)
                return self.max
        return self.max  # pragma: no cover - rank <= count always hits

    def to_dict(self) -> dict[str, float | int]:
        """The distribution as the EXPLAIN wire shape (milliseconds)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "min_ms": round(1000.0 * self.min, 6),
            "p50_ms": round(1000.0 * self.percentile(0.50), 6),
            "p99_ms": round(1000.0 * self.percentile(0.99), 6),
            "max_ms": round(1000.0 * self.max, 6),
            "mean_ms": round(1000.0 * self.total / self.count, 6),
        }


class Span:
    """One timed phase of a trace (monotonic clock, parent/child nesting)."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "started",
        "ended",
        "status",
        "error",
        "attributes",
    )

    def __init__(self, span_id: int, parent_id: int | None, name: str) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.status = "open"
        self.error: str | None = None
        self.attributes: dict[str, Any] = {}

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (overwrites silently)."""
        self.attributes[key] = value

    @property
    def duration_ms(self) -> float:
        """Elapsed milliseconds (up to now while the span is still open)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return 1000.0 * (end - self.started)

    def finish(self, status: str = "ok", error: str | None = None) -> None:
        if self.ended is None:
            self.ended = time.perf_counter()
            self.status = status
            self.error = error

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "span_id": self.span_id,
            "name": self.name,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.error is not None:
            payload["error"] = self.error
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name}, {self.status}, {self.duration_ms:.3f} ms)"


class Trace:
    """One end-to-end execution: an id, a wall-clock anchor, its spans."""

    def __init__(self, name: str, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.name = name
        self.started_at = time.time()
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.spans: list[Span] = []
        self.events: list[dict[str, Any]] = []
        self.spans_dropped = 0
        self._lock = threading.Lock()
        self._seq = 0

    # -- span management (called from any thread) ---------------------------

    def begin_span(self, name: str, parent: Span | None) -> Span | None:
        """Allocate and register a span; ``None`` once the cap is hit."""
        with self._lock:
            if len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.spans_dropped += 1
                return None
            self._seq += 1
            span = Span(self._seq, parent.span_id if parent else None, name)
            self.spans.append(span)
            return span

    def add_event(self, name: str, **attributes: Any) -> None:
        """Record an instantaneous marker (e.g. a codegen compile)."""
        with self._lock:
            if len(self.events) >= MAX_EVENTS_PER_TRACE:
                return
            self.events.append(
                {
                    "name": name,
                    "at_ms": round(1000.0 * (time.perf_counter() - self.started), 6),
                    **attributes,
                }
            )

    def open_spans(self) -> list[Span]:
        with self._lock:
            return [span for span in self.spans if span.ended is None]

    def finish(self) -> None:
        """Close the trace; any span still open is force-closed as an error.

        A leaked-open span means a code path escaped without running its
        ``__exit__`` (a bug); closing it here keeps the recorded data
        well-formed and makes the leak visible in the report.
        """
        with self._lock:
            if self.ended is None:
                self.ended = time.perf_counter()
            for span in self.spans:
                if span.ended is None:
                    span.finish(status="error", error="span leaked open")

    @property
    def duration_ms(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return 1000.0 * (end - self.started)

    def to_dict(self) -> dict[str, Any]:
        """The flat wire form; ``span_tree`` nests it for human output."""
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "name": self.name,
                "started_at": self.started_at,
                "duration_ms": round(self.duration_ms, 6),
                "spans": [span.to_dict() for span in self.spans],
                "events": list(self.events),
                "spans_dropped": self.spans_dropped,
            }

    def span_tree(self) -> list[dict[str, Any]]:
        """The spans as a parent/child forest (children in start order)."""
        with self._lock:
            nodes = {span.span_id: span.to_dict() for span in self.spans}
            order = [span.span_id for span in self.spans]
        roots: list[dict[str, Any]] = []
        for span_id in order:
            node = nodes[span_id]
            parent = nodes.get(node.get("parent_id"))
            if parent is None:
                roots.append(node)
            else:
                parent.setdefault("children", []).append(node)
        return roots

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.trace_id}, {self.name!r}, {len(self.spans)} spans)"


class TraceStore:
    """A bounded in-memory ring buffer of recent finished traces."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("trace store capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Trace | None:
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self, count: int = 20) -> list[Trace]:
        """The most recent traces, newest first."""
        with self._lock:
            return list(reversed(list(self._traces.values())))[:count]

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


#: The process-wide ring buffer `repro explain`, the server's ``/traces``
#: endpoint and the tests all read.
TRACES = TraceStore()


def current_trace() -> Trace | None:
    """The ambient trace of this context (``None`` when not tracing)."""
    return _ACTIVE_TRACE.get()


def current_span() -> Span | None:
    """The innermost open span of this context."""
    return _ACTIVE_SPAN.get()


def add_event(name: str, **attributes: Any) -> None:
    """Record an instantaneous event on the ambient trace, if any."""
    trace = _ACTIVE_TRACE.get()
    if trace is not None:
        trace.add_event(name, **attributes)


class _NullSpan:
    """The shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:  # pragma: no cover - no-op
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager for one span: parent bookkeeping + status on exit."""

    __slots__ = ("_trace", "_name", "_attributes", "_span", "_token")

    def __init__(self, trace: Trace, name: str, attributes: dict[str, Any]):
        self._trace = trace
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._token = None

    def __enter__(self) -> Span | None:
        span = self._trace.begin_span(self._name, _ACTIVE_SPAN.get())
        self._span = span
        if span is not None:
            if self._attributes:
                span.attributes.update(self._attributes)
            self._token = _ACTIVE_SPAN.set(span)
        return span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self._span
        if span is not None:
            if exc_type is None:
                span.finish("ok")
            elif exc_type is GeneratorExit:
                # The consumer abandoned an enumeration mid-stream: a normal
                # lifecycle event (cursor close, page limit), not a failure.
                span.finish("cancelled")
            else:
                span.finish("error", error=f"{exc_type.__name__}: {exc}")
            if self._token is not None:
                _ACTIVE_SPAN.reset(self._token)
        return False


def span(name: str, **attributes: Any) -> "_SpanContext | _NullSpan":
    """A span context on the ambient trace — the shared no-op without one.

    The disabled fast path is one ``ContextVar.get`` plus a shared-object
    return; hot loops that cannot afford even that capture ``tracing=False``
    at construction and skip the call entirely.
    """
    trace = _ACTIVE_TRACE.get()
    if trace is None:
        return NULL_SPAN
    return _SpanContext(trace, name, attributes)


class _TraceContext:
    """Context manager that installs a trace (and its root span)."""

    __slots__ = ("_trace", "_store", "_token", "_span_token", "_root")

    def __init__(self, trace: Trace, store: TraceStore | None):
        self._trace = trace
        self._store = store
        self._token = None
        self._span_token = None
        self._root: Span | None = None

    def __enter__(self) -> Trace:
        self._token = _ACTIVE_TRACE.set(self._trace)
        self._root = self._trace.begin_span(self._trace.name, None)
        if self._root is not None:
            self._span_token = _ACTIVE_SPAN.set(self._root)
        return self._trace

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if self._root is not None:
            if exc_type is None:
                self._root.finish("ok")
            else:
                self._root.finish("error", error=f"{exc_type.__name__}: {exc}")
            if self._span_token is not None:
                _ACTIVE_SPAN.reset(self._span_token)
        self._trace.finish()
        if self._token is not None:
            _ACTIVE_TRACE.reset(self._token)
        if self._store is not None:
            self._store.add(self._trace)
        return False


def start_trace(
    name: str,
    trace_id: str | None = None,
    store: TraceStore | None = TRACES,
) -> _TraceContext:
    """Start a new trace (with a root span) and make it ambient.

    On exit the trace is finished — leaked-open spans are force-closed with
    an error status — and recorded into ``store`` (the process ring buffer
    by default; pass ``None`` to keep a trace out of it).  Starting a trace
    while another is ambient shadows the outer one for the duration; the
    outer trace is restored on exit.
    """
    return _TraceContext(Trace(name, trace_id=trace_id), store)


def traced_answers(
    answers: Iterator[tuple],
    name: str = "enumerate",
    **attributes: Any,
) -> Iterator[tuple]:
    """Wrap an answer iterator in a span with per-answer delay sampling.

    The delay attributed to answer *i* is the producer time only: the clock
    restarts after each ``yield`` returns, so consumer think-time between
    ``next()`` calls does not pollute the constant-delay distribution.
    The distribution, answer count and completion state land on the span
    as attributes (recorded even when the consumer abandons the iterator
    early — the span then closes as ``cancelled``, not an error).
    """
    with span(name, **attributes) as sp:
        if sp is None:
            yield from answers
            return
        delays = DelayStats()
        produced = 0
        exhausted = False
        try:
            clock = time.perf_counter
            last = clock()
            for answer in answers:
                delays.observe(clock() - last)
                produced += 1
                yield answer
                last = clock()
            exhausted = True
        finally:
            sp.set("answers", produced)
            sp.set("exhausted", exhausted)
            if delays.count:
                sp.set("delay", delays.to_dict())
