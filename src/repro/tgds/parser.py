"""A small text syntax for TGDs and ontologies.

TGDs are written with ``->`` separating body and head::

    Researcher(x) -> HasOffice(x, y)
    HasOffice(x, y) -> Office(y)
    Prof(x), HasOffice(x, y) -> LargeOffice(y)
    true -> Seed(x)

Variables and constants follow the conventions of :mod:`repro.cq.parser`,
except that constants are rejected (the paper's TGDs are constant-free).
Existential quantification is implicit: every head variable not occurring in
the body is existentially quantified.
"""

from __future__ import annotations

from repro.cq.parser import _split_atoms, parse_atom
from repro.tgds.ontology import Ontology
from repro.tgds.tgd import TGD, TGDError


def parse_tgd(text: str, label: str = "") -> TGD:
    """Parse a single TGD of the form ``body -> head``."""
    if "->" not in text:
        raise TGDError(f"TGD {text!r} has no '->' separator")
    body_text, head_text = text.split("->", 1)
    body_text = body_text.strip()
    if body_text.lower() in ("true", "⊤", ""):
        body_atoms = []
    else:
        body_atoms = [parse_atom(part) for part in _split_atoms(body_text)]
    head_atoms = [parse_atom(part) for part in _split_atoms(head_text)]
    if not head_atoms:
        raise TGDError(f"TGD {text!r} has an empty head")
    return TGD(body_atoms, head_atoms, label=label)


def parse_ontology(text: str, name: str = "O") -> Ontology:
    """Parse an ontology: one TGD per non-empty, non-comment line."""
    tgds = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        tgds.append(parse_tgd(line, label=f"{name}:{lineno}"))
    return Ontology(tgds, name=name)
