"""Simulations between instances over unary/binary schemas (Appendix A.3).

A simulation from instance ``I`` to instance ``J`` is a relation ``S`` over
``adom(I) × adom(J)`` such that unary facts are preserved and every incoming
or outgoing binary edge of a simulated element can be matched in ``J``.
Simulations characterise the expressive power of ELI: if ``(I, c) ⪯ (J, d)``
then every ELIQ (and every OMQ from (ELI, ELIQ)) satisfied at ``c`` is
satisfied at ``d`` (Lemmas A.3 and A.4 of the paper).

The module computes the *largest* simulation by the standard fixpoint
refinement: start from the full relation and repeatedly delete pairs that
violate one of the three closure conditions.
"""

from __future__ import annotations

from repro.data.instance import Instance


def _unary_labels(instance: Instance) -> dict[object, set[str]]:
    labels: dict[object, set[str]] = {element: set() for element in instance.adom()}
    for fact in instance:
        if fact.arity == 1:
            labels[fact.args[0]].add(fact.relation)
    return labels


def _edges(instance: Instance) -> tuple[dict, dict]:
    """Outgoing and incoming binary edges grouped by source/target element."""
    out_edges: dict[object, set[tuple[str, object]]] = {
        element: set() for element in instance.adom()
    }
    in_edges: dict[object, set[tuple[str, object]]] = {
        element: set() for element in instance.adom()
    }
    for fact in instance:
        if fact.arity == 2:
            source, target = fact.args
            out_edges[source].add((fact.relation, target))
            in_edges[target].add((fact.relation, source))
    return out_edges, in_edges


def largest_simulation(source: Instance, target: Instance) -> set[tuple]:
    """The largest simulation from ``source`` to ``target``.

    Both instances must use only unary and binary relation symbols; higher
    arities raise ``ValueError``.
    """
    for instance in (source, target):
        if any(fact.arity > 2 for fact in instance):
            raise ValueError("simulations are defined for arity <= 2 schemas only")

    source_labels = _unary_labels(source)
    target_labels = _unary_labels(target)
    source_out, source_in = _edges(source)
    target_out, target_in = _edges(target)

    relation = {
        (a, b)
        for a in source.adom()
        for b in target.adom()
        if source_labels[a] <= target_labels[b]
    }

    changed = True
    while changed:
        changed = False
        for pair in list(relation):
            a, b = pair
            ok = True
            for rel, a_next in source_out[a]:
                if not any(
                    (a_next, b_next) in relation
                    for r, b_next in target_out[b]
                    if r == rel
                ):
                    ok = False
                    break
            if ok:
                for rel, a_prev in source_in[a]:
                    if not any(
                        (a_prev, b_prev) in relation
                        for r, b_prev in target_in[b]
                        if r == rel
                    ):
                        ok = False
                        break
            if not ok:
                relation.discard(pair)
                changed = True
    return relation


def simulates(source: Instance, c, target: Instance, d) -> bool:
    """True if ``(source, c) ⪯ (target, d)`` (there is a simulation relating
    ``c`` to ``d``)."""
    return (c, d) in largest_simulation(source, target)
