"""The description logic ELI, presented in TGD syntax (Section 2).

An ELI TGD is a guarded TGD that uses only unary and binary relation
symbols, has a single frontier variable, contains no reflexive loops and no
multi-edges in body or head, and whose head is acyclic and connected.  An
ELIQ is a unary, constant-free CQ whose variable graph is a disjoint union
of trees without self loops or multi-edges.
"""

from __future__ import annotations

from typing import Iterable

from repro.cq.atoms import Atom, Variable, is_variable
from repro.cq.query import ConjunctiveQuery
from repro.tgds.tgd import TGD


def _variable_graph(atoms: Iterable[Atom]) -> dict[Variable, set[Variable]]:
    """The undirected graph ``G^var`` on variables induced by binary atoms."""
    graph: dict[Variable, set[Variable]] = {}
    for atom in atoms:
        for term in atom.args:
            if is_variable(term):
                graph.setdefault(term, set())
        if atom.arity == 2:
            left, right = atom.args
            if is_variable(left) and is_variable(right) and left != right:
                graph[left].add(right)
                graph[right].add(left)
    return graph


def _has_reflexive_loop(atoms: Iterable[Atom]) -> bool:
    return any(
        atom.arity == 2 and atom.args[0] == atom.args[1] for atom in atoms
    )


def _has_multi_edge(atoms: Iterable[Atom]) -> bool:
    """True if two distinct binary atoms mention the same pair of terms."""
    seen: set[frozenset] = set()
    for atom in atoms:
        if atom.arity != 2 or atom.args[0] == atom.args[1]:
            continue
        key = frozenset(atom.args)
        if key in seen:
            return True
        seen.add(key)
    return False


def _is_forest(graph: dict[Variable, set[Variable]]) -> bool:
    """True if the undirected graph is a disjoint union of trees."""
    visited: set[Variable] = set()
    for start in graph:
        if start in visited:
            continue
        stack = [(start, None)]
        visited.add(start)
        while stack:
            node, parent = stack.pop()
            for neighbor in graph[node]:
                if neighbor == parent:
                    continue
                if neighbor in visited:
                    return False
                visited.add(neighbor)
                stack.append((neighbor, node))
    return True


def _is_connected(graph: dict[Variable, set[Variable]]) -> bool:
    if len(graph) <= 1:
        return True
    start = next(iter(graph))
    stack = [start]
    seen = {start}
    while stack:
        node = stack.pop()
        for neighbor in graph[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == len(graph)


def uses_only_low_arity(atoms: Iterable[Atom], maximum: int = 2) -> bool:
    return all(1 <= atom.arity <= maximum for atom in atoms)


def is_eliq(query: ConjunctiveQuery) -> bool:
    """True if ``query`` is an ELIQ (unary, constant-free, tree-shaped)."""
    if query.arity != 1 or query.constants():
        return False
    atoms = list(query.atoms)
    if not uses_only_low_arity(atoms):
        return False
    if _has_reflexive_loop(atoms) or _has_multi_edge(atoms):
        return False
    return _is_forest(_variable_graph(atoms))


def is_eli_tgd(tgd: TGD) -> bool:
    """True if ``tgd`` is an ELI TGD as defined in Section 2 of the paper."""
    if not tgd.is_guarded():
        return False
    atoms = list(tgd.body | tgd.head)
    if not uses_only_low_arity(atoms):
        return False
    if len(tgd.frontier_variables()) > 1:
        return False
    if _has_reflexive_loop(tgd.body) or _has_multi_edge(tgd.body):
        return False
    if _has_reflexive_loop(tgd.head) or _has_multi_edge(tgd.head):
        return False
    head_graph = _variable_graph(tgd.head)
    return _is_forest(head_graph) and _is_connected(head_graph)
