"""Ontologies: finite sets of TGDs with aggregate structural checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.data.schema import Schema
from repro.tgds.eli import is_eli_tgd
from repro.tgds.tgd import TGD


@dataclass(frozen=True)
class Ontology:
    """A finite set of TGDs (the ontology ``O`` of an OMQ)."""

    tgds: tuple[TGD, ...]
    name: str = "O"

    def __init__(self, tgds: Iterable[TGD] = (), name: str = "O"):
        object.__setattr__(self, "tgds", tuple(tgds))
        object.__setattr__(self, "name", name)

    def __iter__(self) -> Iterator[TGD]:
        return iter(self.tgds)

    def __len__(self) -> int:
        return len(self.tgds)

    def is_empty(self) -> bool:
        return not self.tgds

    def is_guarded(self) -> bool:
        """True if every TGD is guarded (the class ``G``)."""
        return all(tgd.is_guarded() for tgd in self.tgds)

    def is_eli(self) -> bool:
        """True if every TGD is an ELI TGD."""
        return all(is_eli_tgd(tgd) for tgd in self.tgds)

    def is_full(self) -> bool:
        """True if no TGD introduces existential variables (Datalog)."""
        return all(tgd.is_full() for tgd in self.tgds)

    def relations(self) -> set[str]:
        symbols: set[str] = set()
        for tgd in self.tgds:
            symbols |= tgd.relations()
        return symbols

    def schema(self) -> Schema:
        relations: dict[str, int] = {}
        for tgd in self.tgds:
            for atom in tgd.body | tgd.head:
                relations[atom.relation] = atom.arity
        return Schema(relations)

    def max_arity(self) -> int:
        if not self.tgds:
            return 0
        return max(tgd.max_arity() for tgd in self.tgds)

    def max_body_radius(self) -> int:
        """The largest number of atoms in any TGD body (a crude bound on how
        deep into the chase a body match can reach)."""
        if not self.tgds:
            return 0
        return max(len(tgd.body) for tgd in self.tgds)

    def max_head_radius(self) -> int:
        """The largest number of atoms in any TGD head (a crude bound on how
        much a single chase step can extend a tree)."""
        if not self.tgds:
            return 0
        return max(len(tgd.head) for tgd in self.tgds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ontology({self.name}, {len(self.tgds)} TGDs)"
