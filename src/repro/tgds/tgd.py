"""Tuple-generating dependencies (TGDs) and guardedness.

A TGD ``∀x̄∀ȳ (φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))`` is stored as two atom sets (body and
head).  The *frontier variables* are the body variables that also occur in
the head; the remaining head variables are existential.  A TGD is *guarded*
when its body is empty (logical truth) or contains an atom mentioning every
body variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cq.atoms import Atom, Variable, variables_of
from repro.cq.query import ConjunctiveQuery


class TGDError(ValueError):
    """Raised for malformed tuple-generating dependencies."""


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``body → ∃ z̄ head``."""

    body: frozenset[Atom]
    head: frozenset[Atom]
    label: str = ""

    def __init__(self, body: Iterable[Atom], head: Iterable[Atom], label: str = ""):
        body = frozenset(body)
        head = frozenset(head)
        if not head:
            raise TGDError("a TGD must have a non-empty head")
        for atom in body | head:
            if atom.constants():
                raise TGDError(f"TGD atoms may not contain constants: {atom}")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "label", label)
        body_vars = frozenset(variables_of(body))
        head_vars = frozenset(variables_of(head))
        object.__setattr__(self, "_body_variables", body_vars)
        object.__setattr__(self, "_head_variables", head_vars)
        object.__setattr__(self, "_frontier_variables", body_vars & head_vars)
        object.__setattr__(self, "_existential_variables", head_vars - body_vars)

    # -- variables (precomputed at construction) ----------------------------

    def body_variables(self) -> frozenset[Variable]:
        return self._body_variables

    def head_variables(self) -> frozenset[Variable]:
        return self._head_variables

    def frontier_variables(self) -> frozenset[Variable]:
        """Variables shared between body and head."""
        return self._frontier_variables

    def existential_variables(self) -> frozenset[Variable]:
        """Head variables bound by the existential quantifier."""
        return self._existential_variables

    def relations(self) -> set[str]:
        return {atom.relation for atom in self.body | self.head}

    # -- structural properties ----------------------------------------------

    def guard(self) -> Atom | None:
        """A guard atom (mentions every body variable), or ``None``."""
        body_vars = self.body_variables()
        for atom in self.body:
            if body_vars <= atom.variables():
                return atom
        return None

    def is_guarded(self) -> bool:
        """True if the body is empty or has a guard atom."""
        return not self.body or self.guard() is not None

    def is_full(self) -> bool:
        """True if the TGD has no existential variables (a full/Datalog TGD)."""
        return not self.existential_variables()

    def body_query(self) -> ConjunctiveQuery:
        """The body as a CQ whose answer variables are the frontier."""
        frontier = sorted(self.frontier_variables(), key=lambda v: v.name)
        return ConjunctiveQuery(frontier, self.body, name=f"body_{self.label or id(self)}")

    def head_query(self) -> ConjunctiveQuery:
        """The head as a CQ whose answer variables are the frontier."""
        frontier = sorted(self.frontier_variables(), key=lambda v: v.name)
        return ConjunctiveQuery(frontier, self.head, name=f"head_{self.label or id(self)}")

    def max_arity(self) -> int:
        return max(atom.arity for atom in self.body | self.head)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " ∧ ".join(sorted(repr(a) for a in self.body)) or "⊤"
        head = " ∧ ".join(sorted(repr(a) for a in self.head))
        existentials = sorted(v.name for v in self.existential_variables())
        prefix = f"∃{','.join(existentials)} " if existentials else ""
        return f"{body} → {prefix}{head}"
