"""Tuple-generating dependencies, guardedness, ELI and ontologies."""

from repro.tgds.tgd import TGD, TGDError
from repro.tgds.ontology import Ontology
from repro.tgds.parser import parse_ontology, parse_tgd
from repro.tgds.eli import is_eli_tgd, is_eliq
from repro.tgds.simulation import largest_simulation, simulates

__all__ = [
    "TGD",
    "TGDError",
    "Ontology",
    "is_eli_tgd",
    "is_eliq",
    "largest_simulation",
    "parse_ontology",
    "parse_tgd",
    "simulates",
]
