"""The free-connex decomposition of a CQ (proof of Proposition 4.2).

For a free-connex acyclic query ``q(x̄)``, the extended query ``q⁺`` (with a
fresh atom guarding the answer variables) has a join tree.  Removing the
guard node splits the atoms of ``q`` into components ``q_1, ..., q_k`` such
that

* each component is acyclic (its part of the join tree is a join tree),
* distinct components share only answer variables, and
* all answer variables of a component occur in the component's *root* atom
  (the neighbour of the guard node).

These facts drive both the CD∘Lin all-tester (Proposition 4.2) and — when
``q`` itself is acyclic too — the CD∘Lin enumeration of Theorem 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cq.atoms import Atom, Variable
from repro.cq.jointree import (
    JoinTree,
    build_join_tree,
    enumerate_join_trees,
    guard_atom,
)
from repro.cq.query import ConjunctiveQuery
from repro.yannakakis.evaluation import NotAcyclicError


class NotFreeConnexError(ValueError):
    """Raised when a query is not free-connex acyclic."""


@dataclass
class Component:
    """One component of the free-connex decomposition."""

    atoms: list[Atom]
    tree: JoinTree
    root: Atom
    answer_variables: tuple[Variable, ...]

    def query(self, name: str = "component") -> ConjunctiveQuery:
        return ConjunctiveQuery(self.answer_variables, self.atoms, name=name)


@dataclass
class FreeConnexDecomposition:
    """The decomposition of ``q`` induced by a join tree of ``q⁺``."""

    query: ConjunctiveQuery
    guard: Atom
    components: list[Component]

    def answer_variables(self) -> tuple[Variable, ...]:
        return self.query.answer_variables


def decompose_free_connex(query: ConjunctiveQuery) -> FreeConnexDecomposition:
    """Decompose a free-connex acyclic query into its components.

    Raises :class:`NotFreeConnexError` when ``q⁺`` has no join tree.  The
    head is expected to contain each answer variable once (callers
    deduplicate with :meth:`ConjunctiveQuery.deduplicated_head`).
    """
    guard = guard_atom(query.answer_variables)
    atoms = list(query.atoms) + [guard]
    tree_plus = build_join_tree(atoms, root=guard)
    if tree_plus is None:
        raise NotFreeConnexError(f"{query.name} is not free-connex acyclic")
    return _decomposition_from_tree(query, guard, tree_plus)


def enumerate_free_connex_decompositions(
    query: ConjunctiveQuery, limit: int = 8
) -> list[FreeConnexDecomposition]:
    """Candidate decompositions of ``query``, one per join tree of ``q⁺``.

    Distinct maximum-weight spanning trees of ``q⁺``'s intersection graph
    (Bernstein–Goodman ties, see
    :func:`repro.cq.jointree.enumerate_join_trees`) induce different
    component splits — different guard children, component roots and
    bottom-up pass shapes — with provably identical answers.  The first
    entry matches :func:`decompose_free_connex`.  Returns ``[]`` when the
    query is not free-connex acyclic.
    """
    guard = guard_atom(query.answer_variables)
    atoms = list(query.atoms) + [guard]
    return [
        _decomposition_from_tree(query, guard, tree_plus)
        for tree_plus in enumerate_join_trees(atoms, root=guard, limit=limit)
    ]


def _decomposition_from_tree(
    query: ConjunctiveQuery, guard: Atom, tree_plus: JoinTree
) -> FreeConnexDecomposition:
    """The decomposition induced by one (valid, guard-rooted) ``q⁺`` tree."""
    components: list[Component] = []
    for child in tree_plus.children(guard):
        component_atoms = tree_plus.subtree_atoms(child)
        adjacency = {
            atom: {
                neighbor
                for neighbor in tree_plus.neighbors(atom)
                if neighbor in set(component_atoms)
            }
            for atom in component_atoms
        }
        component_tree = JoinTree(component_atoms, adjacency, root=child)
        component_vars: set[Variable] = set()
        for atom in component_atoms:
            component_vars |= atom.variables()
        answer_vars = tuple(
            v for v in query.answer_variables if v in component_vars
        )
        if not set(answer_vars) <= child.variables():
            raise NotAcyclicError(
                "internal error: component root does not cover its answer "
                "variables; the join tree of q+ is invalid"
            )
        components.append(
            Component(
                atoms=component_atoms,
                tree=component_tree,
                root=child,
                answer_variables=answer_vars,
            )
        )
    return FreeConnexDecomposition(query=query, guard=guard, components=components)
