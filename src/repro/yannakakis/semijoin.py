"""Semi-joins and the full reducer over a join tree.

The bottom-up semi-join pass of Yannakakis' algorithm removes from every
relation the rows that cannot be extended towards the leaves; the additional
top-down pass yields *global consistency*: every remaining row of every
relation participates in at least one full join result.  Global consistency
is exactly the "progress condition" the constant-delay enumeration
algorithms of the paper rely on.
"""

from __future__ import annotations

from repro.cq.atoms import Atom
from repro.cq.jointree import JoinTree
from repro.yannakakis.relations import AtomRelation


def semijoin(left: AtomRelation, right: AtomRelation) -> bool:
    """Reduce ``left`` to the rows joinable with ``right`` (``left ⋉ right``).

    Returns True if any row was removed.  The join condition is equality on
    the shared variables; with no shared variables the semi-join only checks
    that ``right`` is non-empty.  Interned relations filter with the
    columnar hash semi-join kernel over the left side's key columns; the
    right side's key set is the cached columnar projection either way.
    """
    shared = tuple(v for v in left.variables if v in right.variables)
    if not shared:
        if right.is_empty() and not left.is_empty():
            left.clear()
            return True
        return False
    right_keys = right.project(shared)
    positions = left.positions(shared)
    if left.interned:
        store = left.columns()
        # Large interned filters may run sharded across the ambient worker
        # pool (reduce phase under ``--workers``); ``None`` means "no pool,
        # too small, or the parallel path degraded" — run the kernel here.
        # Row order differs between the two paths; AtomRelation tuples are
        # a set, so that is invisible.
        from repro.parallel.runtime import maybe_parallel_filter

        surviving = maybe_parallel_filter(store, positions, right_keys)
        if surviving is None:
            # Inside a planner scope, single-column edges pick hash vs
            # sorted-merge from the build/probe sizes; outside one,
            # ``planned_kernel`` always answers "hash" (the historical
            # kernel).  Both kernels return the same row set.
            from repro.planner.kernels import planned_kernel

            if (
                len(positions) == 1
                and planned_kernel(len(left.tuples), len(right_keys)) == "sorted"
            ):
                surviving = store.filter_by_keys_sorted(positions[0], right_keys)
            else:
                surviving = store.filter_by_keys(positions, right_keys)
    else:
        surviving = [
            row for row in left.tuples if tuple(row[p] for p in positions) in right_keys
        ]
    if len(surviving) != len(left.tuples):
        left.replace_tuples(surviving)
        return True
    return False


def bottom_up_pass(tree: JoinTree, relations: dict[Atom, AtomRelation]) -> None:
    """Semi-join every parent with each of its children, leaves first."""
    for atom in tree.postorder():
        parent = tree.parent(atom)
        if parent is not None:
            semijoin(relations[parent], relations[atom])


def top_down_pass(tree: JoinTree, relations: dict[Atom, AtomRelation]) -> None:
    """Semi-join every child with its parent, root first."""
    for atom in tree.preorder():
        parent = tree.parent(atom)
        if parent is not None:
            semijoin(relations[atom], relations[parent])


def full_reducer(tree: JoinTree, relations: dict[Atom, AtomRelation]) -> None:
    """Make ``relations`` globally consistent with respect to ``tree``.

    After the call, every row of every relation extends to a full solution of
    the join (or every relation is empty when the join is empty).
    """
    bottom_up_pass(tree, relations)
    top_down_pass(tree, relations)
    if any(relation.is_empty() for relation in relations.values()):
        for relation in relations.values():
            relation.clear()


def reduce_and_diff(
    tree: JoinTree,
    relations: dict[Atom, AtomRelation],
    previous: dict[Atom, AtomRelation],
) -> set[Atom]:
    """Run the full reducer on ``relations`` and diff against ``previous``.

    Returns the atoms whose globally consistent row sets differ from the
    (already reduced) relations in ``previous``.  The incremental
    enumeration-state maintenance uses this to rebuild per-block indexes
    only where the join-tree node actually changed, keeping every untouched
    block's cached indexes alive.
    """
    full_reducer(tree, relations)
    return {
        atom
        for atom, relation in relations.items()
        if relation.tuples != previous[atom].tuples
    }
