"""Boolean evaluation and single-testing of acyclic CQs (Yannakakis 1981).

Single-testing of a candidate answer first substitutes the answer constants
into the query (turning a weakly acyclic query into an acyclic one, as in the
proof of Theorem 3.1) and then runs the Boolean bottom-up pass.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.instance import Instance
from repro.cq.acyclicity import is_acyclic
from repro.cq.jointree import build_join_tree
from repro.cq.query import ConjunctiveQuery, QueryError
from repro.yannakakis.relations import atom_relation
from repro.yannakakis.semijoin import bottom_up_pass


class NotAcyclicError(ValueError):
    """Raised when an algorithm requiring acyclicity gets a cyclic query."""


class BooleanQueryPlan:
    """The data-independent half of Boolean acyclic-query evaluation.

    The constructor decomposes the (Boolean version of the) query into
    connected components and builds one join tree per component — everything
    that depends only on the query.  :meth:`evaluate` then runs the
    data-dependent semi-join passes; a plan can be evaluated against many
    instances, which is how the prepared-query engine amortizes the
    structural work across calls.
    """

    __slots__ = ("query", "_components")

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        boolean_query = query.boolean_version()
        self._components: list[tuple[list, object]] = []
        for component in boolean_query.connected_components():
            tree = build_join_tree(component.atoms)
            if tree is None:
                raise NotAcyclicError(f"query component {component} is not acyclic")
            self._components.append((list(component.atoms), tree))

    def evaluate(self, instance: Instance) -> bool:
        """Evaluate the plan on ``instance`` (the data-dependent phase).

        Over an interned instance the atom relations are materialised as
        dense-id rows (columnar kernels); only emptiness is observed, so no
        decoding is ever needed on this path.
        """
        interned = instance.interned
        for atoms, tree in self._components:
            relations = {
                atom: atom_relation(atom, instance, interned=interned)
                for atom in atoms
            }
            if any(relation.is_empty() for relation in relations.values()):
                return False
            bottom_up_pass(tree, relations)
            if relations[tree.root].is_empty():
                return False
        return True


def boolean_eval(query: ConjunctiveQuery, instance: Instance) -> bool:
    """Evaluate the Boolean version of an acyclic query on ``instance``.

    One-shot convenience over :class:`BooleanQueryPlan`: the query's
    connected components are evaluated independently, each semi-join reduced
    bottom-up along its join tree, and the query holds iff every component's
    root relation stays non-empty.
    """
    return BooleanQueryPlan(query).evaluate(instance)


def single_test(
    query: ConjunctiveQuery, instance: Instance, answer: Sequence
) -> bool:
    """Decide ``answer ∈ q(instance)`` for a weakly acyclic query.

    The answer variables are replaced by the candidate constants, which turns
    a weakly acyclic query into an acyclic one; the resulting Boolean query is
    then evaluated with :func:`boolean_eval`.
    """
    if len(answer) != query.arity:
        raise QueryError(
            f"answer has length {len(answer)}, query arity is {query.arity}"
        )
    substitution = {}
    for variable, value in zip(query.answer_variables, answer):
        if variable in substitution and substitution[variable] != value:
            return False
        substitution[variable] = value
    grounded = query.substitute(substitution)
    if not is_acyclic(grounded):
        raise NotAcyclicError(
            "query is not weakly acyclic: grounding the answer variables "
            "did not produce an acyclic query"
        )
    return boolean_eval(grounded, instance)
