"""Yannakakis-style evaluation of acyclic conjunctive queries."""

from repro.yannakakis.relations import AtomRelation, atom_relation
from repro.yannakakis.semijoin import full_reducer, semijoin
from repro.yannakakis.evaluation import BooleanQueryPlan, boolean_eval, single_test
from repro.yannakakis.decomposition import FreeConnexDecomposition, decompose_free_connex

__all__ = [
    "AtomRelation",
    "BooleanQueryPlan",
    "FreeConnexDecomposition",
    "atom_relation",
    "boolean_eval",
    "decompose_free_connex",
    "full_reducer",
    "semijoin",
    "single_test",
]
