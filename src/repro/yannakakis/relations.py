"""Materialised atom relations used by the acyclic-query algorithms.

An :class:`AtomRelation` stores, for one query atom, the set of variable
assignments induced by the matching facts of an instance.  Assignments are
stored as value tuples aligned with a fixed variable order, which makes
semi-joins and index lookups cheap.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.data.instance import Instance
from repro.cq.atoms import Atom, Variable, is_variable


@dataclass
class AtomRelation:
    """The assignments of one atom's variables over an instance."""

    atom: Atom
    variables: tuple[Variable, ...]
    tuples: set[tuple] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.tuples)

    def is_empty(self) -> bool:
        return not self.tuples

    def copy(self) -> "AtomRelation":
        return AtomRelation(self.atom, self.variables, set(self.tuples))

    def positions(self, variables: Iterable[Variable]) -> tuple[int, ...]:
        """Index positions of ``variables`` within this relation's order."""
        index = {v: i for i, v in enumerate(self.variables)}
        return tuple(index[v] for v in variables)

    def project(self, variables: Iterable[Variable]) -> set[tuple]:
        """The projection of the relation onto ``variables`` (set semantics)."""
        variables = tuple(variables)
        positions = self.positions(variables)
        return {tuple(row[p] for p in positions) for row in self.tuples}

    def index_on(self, variables: Iterable[Variable]) -> dict[tuple, list[tuple]]:
        """A hash index grouping rows by their values on ``variables``."""
        positions = self.positions(tuple(variables))
        index: dict[tuple, list[tuple]] = defaultdict(list)
        for row in self.tuples:
            index[tuple(row[p] for p in positions)].append(row)
        return dict(index)

    def assignment(self, row: tuple) -> dict[Variable, object]:
        """Turn a stored row back into a variable assignment."""
        return dict(zip(self.variables, row))


def atom_relation(atom: Atom, instance: Instance) -> AtomRelation:
    """Materialise the assignments of ``atom`` over ``instance``.

    Constants in the atom act as selections and repeated variables as
    equality filters, exactly as in homomorphism matching.
    """
    variables = tuple(sorted(atom.variables(), key=lambda v: v.name))
    relation = AtomRelation(atom, variables)
    var_positions: dict[Variable, list[int]] = defaultdict(list)
    constant_positions: list[tuple[int, object]] = []
    for position, term in enumerate(atom.args):
        if is_variable(term):
            var_positions[term].append(position)
        else:
            constant_positions.append((position, term))

    for fact in instance.relation(atom.relation):
        if fact.arity != atom.arity:
            continue
        if any(fact.args[p] != value for p, value in constant_positions):
            continue
        row = []
        consistent = True
        for variable in variables:
            positions = var_positions[variable]
            value = fact.args[positions[0]]
            if any(fact.args[p] != value for p in positions[1:]):
                consistent = False
                break
            row.append(value)
        if consistent:
            relation.tuples.add(tuple(row))
    return relation
