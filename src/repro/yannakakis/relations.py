"""Materialised atom relations used by the acyclic-query algorithms.

An :class:`AtomRelation` stores, for one query atom, the set of variable
assignments induced by the matching facts of an instance.  Assignments are
stored as value tuples aligned with a fixed variable order, which makes
semi-joins and index lookups cheap.

Key-projection hash maps (:meth:`AtomRelation.project`) and row indexes
(:meth:`AtomRelation.index_on`) are cached per variable tuple and invalidated
only when the tuple set is replaced through :meth:`AtomRelation.replace_tuples`
/ :meth:`AtomRelation.clear`, so the full reducer and the enumeration phase
build each hash map once per edge instead of once per probe.

Interned relations (``interned=True``) hold rows of dense term ids instead
of term objects and keep a lazily built columnar backing
(:class:`~repro.data.columns.ColumnarRelation`); their projections, row
indexes and semi-join filters run as columnar kernels over ``array('q')``
columns.  :func:`atom_relation` builds interned rows straight from the
instance's columnar store when the atom is constant-free, skipping the
per-``Fact`` object walk entirely.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.data.columns import ColumnarRelation
from repro.data.instance import Instance
from repro.cq.atoms import Atom, Variable, is_variable


class AtomRelation:
    """The assignments of one atom's variables over an instance.

    ``tuples`` exposes the live row set for reading and iteration; mutate it
    only through :meth:`replace_tuples` / :meth:`clear` so the cached
    projections and indexes stay consistent.  When ``interned`` is set the
    rows are dense term-id tuples (decode only at answer emission).
    """

    __slots__ = (
        "atom",
        "variables",
        "interned",
        "_tuples",
        "_var_index",
        "_projections",
        "_indexes",
        "_columns",
    )

    def __init__(
        self,
        atom: Atom,
        variables: Iterable[Variable],
        tuples: Iterable[tuple] | None = None,
        interned: bool = False,
    ):
        self.atom = atom
        self.variables: tuple[Variable, ...] = tuple(variables)
        self.interned = interned
        self._tuples: set[tuple] = set(tuples) if tuples is not None else set()
        self._var_index = {v: i for i, v in enumerate(self.variables)}
        self._projections: dict[tuple[Variable, ...], set[tuple]] = {}
        self._indexes: dict[tuple[Variable, ...], dict[tuple, list[tuple]]] = {}
        self._columns: ColumnarRelation | None = None

    @property
    def tuples(self) -> set[tuple]:
        return self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AtomRelation({self.atom!r}, {len(self._tuples)} rows)"

    def is_empty(self) -> bool:
        return not self._tuples

    def copy(self) -> "AtomRelation":
        return AtomRelation(
            self.atom, self.variables, set(self._tuples), interned=self.interned
        )

    # -- mutation (invalidates caches) ------------------------------------

    def replace_tuples(self, tuples: Iterable[tuple]) -> None:
        """Swap in a new row set, dropping the cached projections/indexes."""
        self._tuples = set(tuples)
        self._invalidate()

    def clear(self) -> None:
        """Remove every row (and the now-stale caches)."""
        self._tuples.clear()
        self._invalidate()

    def _invalidate(self) -> None:
        self._projections.clear()
        self._indexes.clear()
        self._columns = None

    # -- columnar backing --------------------------------------------------

    def columns(self) -> ColumnarRelation:
        """The rows as parallel ``array('q')`` columns (interned rows only).

        Built lazily from the current row set and cached until the rows are
        replaced; the projection/index kernels below run over it.
        """
        store = self._columns
        if store is None:
            store = ColumnarRelation(len(self.variables), self._tuples)
            self._columns = store
        return store

    # -- cached lookups ----------------------------------------------------

    def positions(self, variables: Iterable[Variable]) -> tuple[int, ...]:
        """Index positions of ``variables`` within this relation's order."""
        return tuple(self._var_index[v] for v in variables)

    def project(self, variables: Iterable[Variable]) -> set[tuple]:
        """The projection of the relation onto ``variables`` (set semantics).

        Built once per variable tuple and cached until the rows change; treat
        the result as read-only.  Interned relations project by zipping the
        backing key columns (one C-level pass, no row objects).
        """
        variables = tuple(variables)
        cached = self._projections.get(variables)
        if cached is None:
            positions = self.positions(variables)
            if self.interned:
                cached = self.columns().project(positions)
            else:
                cached = {tuple(row[p] for p in positions) for row in self._tuples}
            self._projections[variables] = cached
        return cached

    def index_on(self, variables: Iterable[Variable]) -> dict[tuple, list[tuple]]:
        """A hash index grouping rows by their values on ``variables``.

        Cached per variable tuple until the rows change; treat the result as
        read-only.  Interned relations group over the backing columns.
        """
        variables = tuple(variables)
        cached = self._indexes.get(variables)
        if cached is None:
            positions = self.positions(variables)
            if self.interned:
                cached = self.columns().index_on(positions)
            else:
                index: dict[tuple, list[tuple]] = defaultdict(list)
                for row in self._tuples:
                    index[tuple(row[p] for p in positions)].append(row)
                cached = dict(index)
            self._indexes[variables] = cached
        return cached

    def assignment(self, row: tuple) -> dict[Variable, object]:
        """Turn a stored row back into a variable assignment."""
        return dict(zip(self.variables, row))


def atom_relation(
    atom: Atom, instance: Instance, interned: bool = False
) -> AtomRelation:
    """Materialise the assignments of ``atom`` over ``instance``.

    Constants in the atom act as selections and repeated variables as
    equality filters, exactly as in homomorphism matching.  The matching
    facts are fetched with one positional-index probe on the atom's constant
    positions (when it has any) instead of scanning the whole relation.

    ``interned`` selects id rows: a constant-free atom is materialised by a
    single projection kernel over the instance's columnar store, and atoms
    with constants walk the (already id-keyed) probe bucket reading
    ``Fact.iargs``.  Callers must only pass ``interned=True`` for instances
    whose :attr:`~repro.data.instance.Instance.interned` flag is set, and
    must decode ids at answer emission.
    """
    variables = tuple(sorted(atom.variables(), key=lambda v: v.name))
    var_positions: dict[Variable, list[int]] = defaultdict(list)
    constant_positions: list[tuple[int, object]] = []
    for position, term in enumerate(atom.args):
        if is_variable(term):
            var_positions[term].append(position)
        else:
            constant_positions.append((position, term))

    if interned and not constant_positions:
        # Constant-free atom over an interned instance: one columnar kernel.
        store = instance.columnar(atom.relation, atom.arity)
        projection = tuple(var_positions[v][0] for v in variables)
        equal_groups = tuple(
            tuple(positions)
            for positions in var_positions.values()
            if len(positions) > 1
        )
        rows = store.project_with_equalities(projection, equal_groups)
        return AtomRelation(atom, variables, rows, interned=True)

    if constant_positions:
        probe_positions = tuple(p for p, _ in constant_positions)
        probe_key = tuple(value for _, value in constant_positions)
        pool = instance.probe(atom.relation, probe_positions, probe_key)
    else:
        pool = instance.relation(atom.relation)

    rows: set[tuple] = set()
    for fact in pool:
        if fact.arity != atom.arity:
            continue
        args = fact.iargs if interned else fact.args
        row = []
        consistent = True
        for variable in variables:
            positions = var_positions[variable]
            value = args[positions[0]]
            if any(args[p] != value for p in positions[1:]):
                consistent = False
                break
            row.append(value)
        if consistent:
            rows.add(tuple(row))
    return AtomRelation(atom, variables, rows, interned=interned)
