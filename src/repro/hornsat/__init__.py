"""Linear-time Horn satisfiability and minimal models (Dowling–Gallier)."""

from repro.hornsat.horn import HornClause, HornFormula, minimal_model

__all__ = ["HornClause", "HornFormula", "minimal_model"]
