"""Propositional Horn formulas and their minimal models.

The paper's Proposition 3.3 computes the query-directed chase by building a
satisfiable definite Horn formula and reading off its unique minimal model,
relying on the classical result of Dowling and Gallier (1984) that minimal
models of Horn formulas can be computed in linear time.  This module
implements that algorithm: a forward-chaining unit propagation with a counter
per clause, which runs in time linear in the total size of the formula.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable


@dataclass(frozen=True)
class HornClause:
    """A definite Horn clause ``body → head``.

    Facts are clauses with an empty body.  Goal clauses (empty head) are not
    needed for minimal-model computation and are not supported.
    """

    body: frozenset
    head: Hashable

    def __init__(self, body: Iterable[Hashable], head: Hashable):
        object.__setattr__(self, "body", frozenset(body))
        object.__setattr__(self, "head", head)

    def is_fact(self) -> bool:
        return not self.body


@dataclass
class HornFormula:
    """A conjunction of definite Horn clauses."""

    clauses: list[HornClause] = field(default_factory=list)

    def add_fact(self, head: Hashable) -> None:
        self.clauses.append(HornClause((), head))

    def add_rule(self, body: Iterable[Hashable], head: Hashable) -> None:
        self.clauses.append(HornClause(body, head))

    def variables(self) -> set:
        result: set = set()
        for clause in self.clauses:
            result |= clause.body
            result.add(clause.head)
        return result

    def size(self) -> int:
        return sum(len(clause.body) + 1 for clause in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)


def minimal_model(formula: HornFormula) -> set:
    """The unique minimal model of a definite Horn formula.

    Implemented as Dowling–Gallier forward chaining: each clause keeps a
    counter of unsatisfied body literals; when the counter hits zero the head
    is derived and pushed onto a work queue.  Total running time is linear in
    the size of the formula.
    """
    counters = [len(clause.body) for clause in formula.clauses]
    watchers: dict[Hashable, list[int]] = defaultdict(list)
    for index, clause in enumerate(formula.clauses):
        for literal in clause.body:
            watchers[literal].append(index)

    derived: set = set()
    queue: deque = deque()
    for index, clause in enumerate(formula.clauses):
        if counters[index] == 0 and clause.head not in derived:
            derived.add(clause.head)
            queue.append(clause.head)

    while queue:
        literal = queue.popleft()
        for index in watchers.get(literal, ()):
            counters[index] -= 1
            if counters[index] == 0:
                head = formula.clauses[index].head
                if head not in derived:
                    derived.add(head)
                    queue.append(head)
    return derived
