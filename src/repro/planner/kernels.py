"""Ambient per-edge kernel choice for the semi-join reducer.

The reducer (:func:`repro.yannakakis.semijoin.semijoin`) is called deep
inside the reduce passes, far from anything that knows whether the planner
is on.  This module carries that one bit across the call stack as a
context variable: the materialization wraps its enumerator builds in
:func:`semijoin_planning`, and the semi-join kernel consults
:func:`planned_kernel` — ``"hash"`` (the historical default) outside a
planning scope, the :func:`repro.planner.cost.choose_semijoin_kernel`
decision inside one.

Deliberately import-light (stdlib only): :mod:`repro.yannakakis.semijoin`
imports it lazily from a layer below the planner package.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = ["planned_kernel", "semijoin_planning"]

_PLANNING: ContextVar[bool] = ContextVar("repro-semijoin-planning", default=False)


@contextmanager
def semijoin_planning(enabled: bool = True) -> Iterator[None]:
    """Scope in which semi-joins pick their kernel from build/probe sizes."""
    token = _PLANNING.set(bool(enabled))
    try:
        yield
    finally:
        _PLANNING.reset(token)


def planned_kernel(probe_rows: int, build_keys: int) -> str:
    """The kernel for one semi-join edge: ``"hash"`` or ``"sorted"``.

    Outside a :func:`semijoin_planning` scope this always answers
    ``"hash"``, keeping the planner-off path byte-for-byte on the
    historical kernel.
    """
    if not _PLANNING.get():
        return "hash"
    from repro.planner.cost import choose_semijoin_kernel

    return choose_semijoin_kernel(probe_rows, build_keys)
