"""The textbook cardinality/cost model behind the plan choice.

Standard System-R-style estimation over the statistics of
:mod:`repro.planner.statistics`:

* an atom's cardinality is the stored cardinality scaled by ``1/distinct``
  for every constant position and every repeated-variable position
  (equality selectivity under the uniformity assumption);
* a semi-join ``parent ⋉ child`` keeps ``min(1, d_child / d_parent)`` of
  the parent's rows, where ``d_X`` is the distinct count of the shared
  variables on side ``X`` (the containment-of-value-sets assumption);
* the cost of a bottom-up pass is the sum of build + probe sizes along the
  component tree's edges, in the estimated (already semi-joined) sizes.

A candidate decomposition's cost is the summed cost of its component
passes plus the cross-block reduce and the enumeration walk over the
estimated block rows.  The estimates feed two decisions: which candidate
decomposition to run (:func:`repro.planner.choice.choose_plan`) and which
semi-join kernel to use per edge (:func:`choose_semijoin_kernel`).
"""

from __future__ import annotations

from repro.cq.atoms import Atom, Variable, is_variable
from repro.planner.statistics import InstanceStatistics

__all__ = [
    "choose_semijoin_kernel",
    "estimate_atom_cardinality",
    "estimate_component",
    "estimate_decomposition",
]


def estimate_atom_cardinality(atom: Atom, statistics: InstanceStatistics) -> float:
    """Estimated matching rows of ``atom`` against the stored relation."""
    stats = statistics.get(atom.relation, atom.arity)
    if stats is None:
        return 0.0
    estimate = float(stats.cardinality)
    seen: set[Variable] = set()
    for position, term in enumerate(atom.args):
        if is_variable(term):
            if term in seen:
                estimate *= stats.selectivity(position)
            else:
                seen.add(term)
        else:
            estimate *= stats.selectivity(position)
    return estimate


def _variable_positions(atom: Atom, variables: set[Variable]) -> list[int]:
    """The first position of each of ``variables`` in ``atom``."""
    positions: list[int] = []
    found: set[Variable] = set()
    for position, term in enumerate(atom.args):
        if is_variable(term) and term in variables and term not in found:
            found.add(term)
            positions.append(position)
    return positions


def _distinct_on(
    atom: Atom,
    variables: set[Variable],
    cardinality: float,
    statistics: InstanceStatistics,
) -> float:
    """Estimated distinct value combinations of ``variables`` in ``atom``.

    The product of per-position distinct counts under independence, capped
    by the atom's own (estimated) cardinality — a relation can never have
    more distinct keys than rows.
    """
    stats = statistics.get(atom.relation, atom.arity)
    if stats is None:
        return 0.0
    combinations = 1.0
    for position in _variable_positions(atom, variables):
        combinations *= stats.distinct_at(position)
    return max(1.0, min(combinations, max(cardinality, 1.0)))


def estimate_component(component, statistics: InstanceStatistics) -> tuple[float, float]:
    """``(cost, block_rows)`` of one component's bottom-up pass.

    Simulates the semi-join pass towards the component root in estimated
    sizes: every tree edge contributes its build + probe size to the cost
    and shrinks the parent by the containment selectivity.  ``block_rows``
    is the estimated size of the root's projection onto the component's
    answer variables — the block relation the reduced query will hold.
    """
    estimates = {
        atom: estimate_atom_cardinality(atom, statistics) for atom in component.atoms
    }
    cost = 0.0
    for atom in component.tree.postorder():
        parent = component.tree.parent(atom)
        if parent is None:
            continue
        shared = set(atom.variables()) & set(parent.variables())
        child_rows = estimates[atom]
        parent_rows = estimates[parent]
        cost += child_rows + parent_rows
        if not shared:
            if child_rows <= 0.0:
                estimates[parent] = 0.0
            continue
        d_child = _distinct_on(atom, shared, child_rows, statistics)
        d_parent = _distinct_on(parent, shared, parent_rows, statistics)
        survival = min(1.0, d_child / d_parent) if d_parent > 0.0 else 0.0
        estimates[parent] = parent_rows * survival
    root_rows = estimates[component.root]
    if component.answer_variables:
        block_rows = min(
            root_rows,
            _distinct_on(
                component.root,
                set(component.answer_variables),
                root_rows,
                statistics,
            ),
        )
    else:
        block_rows = 0.0
    return cost, block_rows


def estimate_decomposition(
    decomposition, statistics: InstanceStatistics
) -> tuple[float, int]:
    """``(cost, estimated_rows)`` of running one candidate decomposition.

    ``estimated_rows`` is the estimated total size of the reduced block
    database ``D1`` (the sum of the block relations), directly comparable
    with ``ReducedQuery.size()`` — the estimated-vs-actual pair surfaced
    in ``EngineStats`` and ``repro explain``.
    """
    total_cost = 0.0
    total_rows = 0.0
    for component in decomposition.components:
        cost, block_rows = estimate_component(component, statistics)
        total_cost += cost
        total_rows += block_rows
    # Cross-block full reducer (two passes over every block) plus the
    # enumeration walk, all linear in the block rows.
    total_cost += 3.0 * total_rows
    return total_cost, int(total_rows)


#: Minimum key-set size before the sorted-merge kernel is considered at
#: all: below this, kernel choice is noise.
_SORTED_KERNEL_MIN_KEYS = 256
#: How many times larger than the probe side the key set must be for the
#: sorted-run intersection (which first prunes the key set to the values
#: actually present) to beat the straight hash probe.
_SORTED_KERNEL_RATIO = 16


def choose_semijoin_kernel(probe_rows: int, build_keys: int) -> str:
    """``"hash"`` or ``"sorted"`` from the estimated build/probe sizes.

    The hash kernel probes every row of the probe side against the key
    set; the sorted-merge kernel intersects the sorted key runs first, so
    it wins when the build-side key set dwarfs the probe side (the merge
    prunes it to at most the probe side's distinct values before the row
    filter runs).  Both kernels are set-identical by construction — this
    is purely a constant-factor decision.
    """
    if build_keys >= _SORTED_KERNEL_MIN_KEYS and build_keys >= _SORTED_KERNEL_RATIO * max(
        probe_rows, 1
    ):
        return "sorted"
    return "hash"
