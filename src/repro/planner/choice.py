"""Candidate plans and the cost-based choice.

``plan_candidates`` enumerates structurally distinct free-connex
decompositions of a (deduplicated) query — the default one first, then the
Bernstein–Goodman maximum-weight ties of ``q⁺``
(:func:`repro.yannakakis.decomposition.enumerate_free_connex_decompositions`)
with duplicates in component structure removed.  ``choose_plan`` costs
every candidate against one instance-statistics snapshot and picks the
cheapest, ties broken towards the lowest index — so when the model cannot
separate candidates, the default plan runs and the planner can never
regress by tie-breaking alone.

The returned :class:`PlanChoice` is the record surfaced everywhere: the
materialization counts it into ``EngineStats``, stashes it on the prepared
plan for ``repro explain`` (chosen candidate, losing candidates with their
costs, estimated vs actual block rows) and annotates the ``plan_choice``
span with its summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cq.query import ConjunctiveQuery
from repro.data.instance import Instance
from repro.planner.cost import estimate_decomposition
from repro.planner.statistics import statistics_for
from repro.yannakakis.decomposition import (
    FreeConnexDecomposition,
    enumerate_free_connex_decompositions,
)

__all__ = ["CandidatePlan", "PlanChoice", "choose_plan", "plan_candidates"]

#: Candidate decompositions considered per query (the default plus up to
#: ``limit - 1`` distinct ties); plan choice is linear in this.
DEFAULT_CANDIDATE_LIMIT = 6


def _signature(decomposition: FreeConnexDecomposition) -> frozenset:
    """A structural key: two decompositions with equal keys run identically."""
    return frozenset(
        (
            component.root,
            frozenset(component.atoms),
            frozenset(
                frozenset((parent, child)) for parent, child in component.tree.edges()
            ),
        )
        for component in decomposition.components
    )


@dataclass(frozen=True)
class CandidatePlan:
    """One costed candidate decomposition."""

    index: int
    decomposition: FreeConnexDecomposition = field(repr=False)
    cost: float
    estimated_rows: int

    def as_dict(self) -> dict:
        """The EXPLAIN shape of one candidate (structure + cost, no objects)."""
        return {
            "index": self.index,
            "cost": round(self.cost, 3),
            "estimated_rows": self.estimated_rows,
            "components": [
                {
                    "root": component.root.relation,
                    "atoms": sorted(atom.relation for atom in component.atoms),
                }
                for component in self.decomposition.components
            ],
        }


@dataclass
class PlanChoice:
    """The outcome of one cost-based plan decision."""

    chosen: CandidatePlan
    candidates: list[CandidatePlan]
    statistics_version: int
    #: Filled in after the reduction ran: the actual reduced block rows
    #: (``ReducedQuery.size()``), the estimate's ground truth.
    actual_rows: int | None = None

    @property
    def decomposition(self) -> FreeConnexDecomposition:
        return self.chosen.decomposition

    @property
    def estimated_rows(self) -> int:
        return self.chosen.estimated_rows

    def as_dict(self) -> dict:
        """The EXPLAIN shape: the chosen plan plus every losing candidate."""
        return {
            "chosen": self.chosen.index,
            "cost": round(self.chosen.cost, 3),
            "estimated_rows": self.chosen.estimated_rows,
            "actual_rows": self.actual_rows,
            "statistics_version": self.statistics_version,
            "candidates": [candidate.as_dict() for candidate in self.candidates],
        }


def plan_candidates(
    query: ConjunctiveQuery,
    default: FreeConnexDecomposition | None = None,
    limit: int = DEFAULT_CANDIDATE_LIMIT,
) -> list[FreeConnexDecomposition]:
    """Structurally distinct candidate decompositions, the default first.

    ``query`` must already have a deduplicated head (the form prepared
    plans carry); ``default`` is the decomposition the unplanned path
    would run — always candidate 0, whether or not the tie enumeration
    rediscovers it.
    """
    candidates: list[FreeConnexDecomposition] = []
    seen: set[frozenset] = set()
    if default is not None:
        candidates.append(default)
        seen.add(_signature(default))
    for decomposition in enumerate_free_connex_decompositions(query, limit=limit):
        if len(candidates) >= limit:
            break
        signature = _signature(decomposition)
        if signature in seen:
            continue
        seen.add(signature)
        candidates.append(decomposition)
    return candidates


def choose_plan(
    candidates: list[FreeConnexDecomposition], instance: Instance
) -> PlanChoice | None:
    """Cost ``candidates`` against ``instance`` and pick the cheapest.

    Returns ``None`` on an empty candidate list.  With a single candidate
    the choice degenerates to recording its estimate — still worth it for
    the estimated-vs-actual telemetry.
    """
    if not candidates:
        return None
    statistics = statistics_for(instance)
    costed = [
        CandidatePlan(index, decomposition, *estimate_decomposition(decomposition, statistics))
        for index, decomposition in enumerate(candidates)
    ]
    chosen = min(costed, key=lambda candidate: (candidate.cost, candidate.index))
    return PlanChoice(
        chosen=chosen, candidates=costed, statistics_version=statistics.version
    )
