"""Cost-based adaptive planning over the columnar statistics.

The compiler's structural choices — which join tree of ``q⁺``, hence which
free-connex decomposition — are all provably answer-preserving, so picking
between them is purely a constant-factor decision (ROADMAP item 3).  This
package makes that decision from data:

* :mod:`repro.planner.statistics` — per-relation cardinality and
  per-position distinct counts, collected on the interned columnar stores
  and cached on the instance until its version counter moves;
* :mod:`repro.planner.cost` — the textbook estimation model (equality
  selectivities, containment semi-join survival, build + probe edge
  costs) and the per-edge hash vs sorted-merge kernel decision;
* :mod:`repro.planner.choice` — candidate enumeration from the
  Bernstein–Goodman maximum-weight ties and the cheapest-plan pick;
* :mod:`repro.planner.kernels` — the ambient scope through which the
  reducer's semi-joins learn that kernel choice is on.

The engine consumes all of this through
:meth:`repro.engine.materialization.Materialization.state_for`; the
``planner`` tri-state of :class:`repro.config.ExecutionOptions` (process
default ``REPRO_NO_PLANNER`` / ``set_planner``, CLI ``--no-planner``) is
the A/B escape hatch, and the differential harness holds the two paths to
byte-identical answers.
"""

from repro.planner.choice import (
    CandidatePlan,
    PlanChoice,
    choose_plan,
    plan_candidates,
)
from repro.planner.cost import (
    choose_semijoin_kernel,
    estimate_atom_cardinality,
    estimate_component,
    estimate_decomposition,
)
from repro.planner.kernels import planned_kernel, semijoin_planning
from repro.planner.statistics import (
    InstanceStatistics,
    RelationStatistics,
    collect_statistics,
    statistics_for,
)

__all__ = [
    "CandidatePlan",
    "InstanceStatistics",
    "PlanChoice",
    "RelationStatistics",
    "choose_plan",
    "choose_semijoin_kernel",
    "collect_statistics",
    "estimate_atom_cardinality",
    "estimate_component",
    "estimate_decomposition",
    "plan_candidates",
    "planned_kernel",
    "semijoin_planning",
    "statistics_for",
]
