"""Per-relation statistics collected on the (interned) columnar stores.

The cost model of :mod:`repro.planner.cost` consumes three numbers per
``(relation, arity)`` pair: the cardinality, and per position the number of
distinct values (whose inverse is the classical key selectivity).  On an
interned instance they come from one pass over the cached
:class:`~repro.data.columns.ColumnarRelation` columns (a ``set`` over an
``array('q')`` — C-speed); the term-object store falls back to a fact walk.

Collection is lazy and cached *on the instance* keyed by its mutation
version (:func:`statistics_for`): the first plan decision after a version
bump re-collects, every later decision on the same version is a dict hit.
This deliberately piggybacks on the existing invalidation machinery — the
version counter that already drives materialization staleness — instead of
adding a second one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.instance import Instance

__all__ = [
    "InstanceStatistics",
    "RelationStatistics",
    "collect_statistics",
    "statistics_for",
]

#: The attribute statistics are cached under on the instance (keyed by
#: version inside the snapshot, so staleness is one integer comparison).
_CACHE_ATTRIBUTE = "_planner_statistics"


@dataclass(frozen=True)
class RelationStatistics:
    """Cardinality and per-position distinct counts of one stored relation."""

    relation: str
    arity: int
    cardinality: int
    #: Distinct values per position, aligned with the columns.
    distinct: tuple[int, ...]

    def distinct_at(self, position: int) -> int:
        """Distinct values at ``position`` (at least 1 on a non-empty relation)."""
        if position >= len(self.distinct):
            return max(1, self.cardinality)
        return max(1, self.distinct[position])

    def selectivity(self, position: int) -> float:
        """The textbook equality selectivity ``1 / distinct`` at ``position``."""
        return 1.0 / self.distinct_at(position)


@dataclass(frozen=True)
class InstanceStatistics:
    """One consistent statistics snapshot of an instance at a version."""

    version: int
    total_facts: int
    relations: Mapping[tuple[str, int], RelationStatistics]

    def get(self, relation: str, arity: int) -> RelationStatistics | None:
        """The statistics of ``relation``/``arity``, or ``None`` if absent."""
        return self.relations.get((relation, arity))

    def cardinality(self, relation: str, arity: int) -> int:
        """The stored cardinality of ``relation``/``arity`` (0 if absent)."""
        stats = self.relations.get((relation, arity))
        return stats.cardinality if stats is not None else 0


def collect_statistics(instance: Instance) -> InstanceStatistics:
    """One statistics pass over every stored relation of ``instance``."""
    per_relation: dict[tuple[str, int], RelationStatistics] = {}
    for name in sorted(instance.relations()):
        facts = instance.relation(name)
        counts: dict[int, int] = {}
        for fact in facts:
            counts[fact.arity] = counts.get(fact.arity, 0) + 1
        for arity, cardinality in sorted(counts.items()):
            if arity == 0:
                distinct: tuple[int, ...] = ()
            elif instance.interned:
                store = instance.columnar(name, arity)
                distinct = tuple(len(set(column)) for column in store.columns)
            else:
                distinct = tuple(
                    len({fact.args[p] for fact in facts if fact.arity == arity})
                    for p in range(arity)
                )
            per_relation[(name, arity)] = RelationStatistics(
                relation=name,
                arity=arity,
                cardinality=cardinality,
                distinct=distinct,
            )
    return InstanceStatistics(
        version=instance.version,
        total_facts=len(instance),
        relations=per_relation,
    )


def statistics_for(instance: Instance) -> InstanceStatistics:
    """The statistics of ``instance``, collected once per mutation version.

    The snapshot is stashed on the instance itself and compared against the
    live version counter on every read, so a mutated instance transparently
    re-collects on its next plan decision and an unchanged one pays a
    single attribute load plus an integer comparison.
    """
    cached: InstanceStatistics | None = getattr(instance, _CACHE_ATTRIBUTE, None)
    if cached is not None and cached.version == instance.version:
        return cached
    statistics = collect_statistics(instance)
    setattr(instance, _CACHE_ATTRIBUTE, statistics)
    return statistics
