"""Make the in-tree sources importable when the package is not installed.

With ``pip install -e .`` this is a no-op; the fallback keeps ``pytest`` and
the benchmark scripts working straight from a clean checkout.
"""

import os
import sys

try:
    import repro  # noqa: F401
except ImportError:
    _SRC = os.path.join(os.path.dirname(__file__), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
